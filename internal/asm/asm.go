// Package asm assembles the Agilla agent language used throughout the
// paper (Figures 2, 8, and 13) into VM bytecode, and disassembles bytecode
// back to text.
//
// Source format, one instruction per line:
//
//	// comment
//	BEGIN pushc TEMPERATURE   // optional leading label
//	      sense
//	      pushcl 200
//	      clt
//	      rjumpc FIRE
//	      ...
//	FIRE  pushn fir
//
// Labels are identifiers that start the line and are followed by an
// instruction on the same or a later line. Operands may be decimal
// integers, labels (resolved to code addresses), or the built-in symbols
// for sensor and field types (TEMPERATURE, PHOTO, SOUND, SMOKE, VALUE,
// STRING, LOCATION, TYPE, READING, AGENTID, ANY).
//
// Every assembled program is additionally checked by the shared static
// verifier (internal/vm.Verify): jump targets must land on instruction
// boundaries, heap indices must be in range, and the worst-case stack
// analysis must not prove a guaranteed underflow or overflow. Verifier
// findings are reported with the source line of the offending
// instruction and wrap ErrVerify.
package asm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/agilla-go/agilla/internal/tuplespace"
	"github.com/agilla-go/agilla/internal/vm"
)

// ErrSyntax is wrapped by all assembly parse errors. Every wrap carries
// the source line number and the offending token.
var ErrSyntax = errors.New("asm: syntax error")

// ErrVerify is wrapped by static-verification failures of otherwise
// well-formed source (bad jump targets, guaranteed stack underflow, ...).
var ErrVerify = errors.New("asm: program verification failed")

// Builtin symbol values usable as immediate operands.
var builtins = map[string]int16{
	// Sensor type codes (for pushc + sense, and pushrt).
	"TEMPERATURE": int16(tuplespace.SensorTemperature),
	"PHOTO":       int16(tuplespace.SensorPhoto),
	"SOUND":       int16(tuplespace.SensorSound),
	"SMOKE":       int16(tuplespace.SensorSmoke),
	// Field type codes (for pusht).
	"ANY":      int16(tuplespace.TypeAny),
	"VALUE":    int16(tuplespace.TypeValue),
	"STRING":   int16(tuplespace.TypeString),
	"LOCATION": int16(tuplespace.TypeLocation),
	"READING":  int16(tuplespace.TypeReading),
	"AGENTID":  int16(tuplespace.TypeAgentID),
}

// pushtSpecial lets `pusht TEMPERATURE` mean "readings of the temperature
// sensor" rather than the raw sensor code, as the FIRETRACKER agent
// expects.
var pushtSpecial = map[string]int16{
	"TEMPERATURE": int16(tuplespace.TypeOfSensor(tuplespace.SensorTemperature)),
	"PHOTO":       int16(tuplespace.TypeOfSensor(tuplespace.SensorPhoto)),
	"SOUND":       int16(tuplespace.TypeOfSensor(tuplespace.SensorSound)),
	"SMOKE":       int16(tuplespace.TypeOfSensor(tuplespace.SensorSmoke)),
}

type stmt struct {
	line int
	op   vm.Op
	info vm.Info
	args []string
	addr int
}

// Assemble compiles source text to bytecode and statically verifies the
// result. Parse errors wrap ErrSyntax, verification findings wrap
// ErrVerify; both carry the source line.
func Assemble(src string) ([]byte, error) {
	code, _, err := AssembleReport(src)
	return code, err
}

// AssembleReport is Assemble returning the static verifier's report
// alongside the bytecode, so callers (package program) need not verify
// a second time.
func AssembleReport(src string) ([]byte, vm.VerifyReport, error) {
	code, rep, _, err := AssembleWithLines(src)
	return code, rep, err
}

// AssembleWithLines is AssembleReport additionally returning a map from
// each instruction's byte address to its 1-based source line, so callers
// (program.Analyze, agilla vet) can position later analysis findings the
// same way verification findings are positioned here.
func AssembleWithLines(src string) ([]byte, vm.VerifyReport, map[int]int, error) {
	code, rep, stmts, err := assemble(src)
	if err != nil {
		return nil, vm.VerifyReport{}, nil, err
	}
	pcLines := make(map[int]int, len(stmts))
	for _, st := range stmts {
		pcLines[st.addr] = st.line
	}
	return code, rep, pcLines, nil
}

func assemble(src string) ([]byte, vm.VerifyReport, []stmt, error) {
	lines := strings.Split(src, "\n")
	labels := make(map[string]int)
	consts := make(map[string]int16)
	var stmts []stmt
	addr := 0

	for ln, raw := range lines {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		// .const NAME VALUE directive.
		if fields[0] == ".const" {
			if len(fields) != 3 {
				return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: %q: want .const NAME VALUE", ln+1, ErrSyntax, strings.Join(fields, " "))
			}
			v, err := parseInt(fields[2], -32768, 32767)
			if err != nil {
				return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w (.const %s)", ln+1, err, fields[1])
			}
			consts[fields[1]] = int16(v)
			continue
		}
		// A leading address marker ("12:") from disassembler output is
		// ignored, so disassemblies reassemble verbatim.
		if isAddrMarker(fields[0]) {
			fields = fields[1:]
		}
		// Leading labels: tokens that are not mnemonics.
		for len(fields) > 0 {
			name := strings.TrimSuffix(fields[0], ":")
			if _, isOp := vm.ByName(strings.ToLower(name)); isOp && name == fields[0] {
				break
			}
			if !isLabel(name) {
				break
			}
			if _, dup := labels[name]; dup {
				return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: duplicate label %q", ln+1, ErrSyntax, name)
			}
			labels[name] = addr
			fields = fields[1:]
		}
		if len(fields) == 0 {
			continue // label-only line; binds to next instruction
		}
		op, ok := vm.ByName(strings.ToLower(fields[0]))
		if !ok {
			return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: unknown instruction %q", ln+1, ErrSyntax, fields[0])
		}
		info, _ := vm.Lookup(op)
		st := stmt{line: ln + 1, op: op, info: info, args: fields[1:], addr: addr}
		stmts = append(stmts, st)
		addr += 1 + info.Operands
		if addr > 65535 {
			return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: %q pushes the program past 65535 bytes", st.line, ErrSyntax, fields[0])
		}
	}

	resolve := func(tok string, st stmt) (int16, error) {
		if v, ok := labels[tok]; ok {
			return int16(v), nil
		}
		if v, ok := consts[tok]; ok {
			return v, nil
		}
		if v, ok := builtins[tok]; ok {
			return v, nil
		}
		v, err := parseInt(tok, -32768, 32767)
		if err != nil {
			return 0, fmt.Errorf("line %d: %w: cannot resolve operand %q", st.line, ErrSyntax, tok)
		}
		return int16(v), nil
	}

	code := make([]byte, 0, addr)
	for _, st := range stmts {
		if err := checkArity(st); err != nil {
			return nil, vm.VerifyReport{}, nil, err
		}
		code = append(code, byte(st.op))
		// Operand encoding is driven by the ISA metadata's operand kind;
		// only pushc and pusht need instruction-specific handling (the
		// sensor-name convenience mappings).
		switch st.info.Kind {
		case vm.OperandNone:
			// no operand bytes

		case vm.OperandU8: // pushc
			v, err := resolve(st.args[0], st)
			if err != nil {
				return nil, vm.VerifyReport{}, nil, err
			}
			if v < 0 || v > 255 {
				return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: %s operand %q = %d out of [0,255]; use pushcl", st.line, ErrSyntax, st.info.Name, st.args[0], v)
			}
			code = append(code, byte(v))

		case vm.OperandS16: // pushcl
			v, err := resolve(st.args[0], st)
			if err != nil {
				return nil, vm.VerifyReport{}, nil, err
			}
			code = append(code, byte(uint16(v)>>8), byte(uint16(v)))

		case vm.OperandName3: // pushn
			name := strings.Trim(st.args[0], `"`)
			if len(name) == 0 || len(name) > tuplespace.MaxStringLen {
				return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: pushn name %q must be 1-%d chars", st.line, ErrSyntax, st.args[0], tuplespace.MaxStringLen)
			}
			for i := 0; i < len(name); i++ {
				if !vm.ValidNameByte(name[i]) {
					return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: pushn name %q: %q is not a printable name character", st.line, ErrSyntax, name, name[i])
				}
			}
			var buf [3]byte
			copy(buf[:], name)
			code = append(code, buf[:]...)

		case vm.OperandType: // pusht
			tok := st.args[0]
			var v int16
			if sv, ok := pushtSpecial[tok]; ok {
				v = sv
			} else {
				var err error
				v, err = resolve(tok, st)
				if err != nil {
					return nil, vm.VerifyReport{}, nil, err
				}
			}
			if v < 0 || v > 255 {
				return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: pusht code %q = %d out of [0,255]", st.line, ErrSyntax, tok, v)
			}
			code = append(code, byte(v))

		case vm.OperandSensor: // pushrt
			v, err := resolve(st.args[0], st)
			if err != nil {
				return nil, vm.VerifyReport{}, nil, err
			}
			if v < 0 || v > 255 {
				return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: pushrt sensor %q = %d out of [0,255]", st.line, ErrSyntax, st.args[0], v)
			}
			code = append(code, byte(v))

		case vm.OperandLoc: // pushloc
			x, err := resolve(st.args[0], st)
			if err != nil {
				return nil, vm.VerifyReport{}, nil, err
			}
			y, err := resolve(st.args[1], st)
			if err != nil {
				return nil, vm.VerifyReport{}, nil, err
			}
			if x < -128 || x > 127 || y < -128 || y > 127 {
				return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: pushloc coordinates %q %q out of [-128,127]", st.line, ErrSyntax, st.args[0], st.args[1])
			}
			code = append(code, byte(int8(x)), byte(int8(y)))

		case vm.OperandRel: // rjump, rjumpc
			var off int
			if target, ok := labels[st.args[0]]; ok {
				off = target - st.addr
			} else {
				v, err := parseInt(st.args[0], -128, 127)
				if err != nil {
					return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: unknown jump target %q", st.line, ErrSyntax, st.args[0])
				}
				off = v
			}
			if off < -128 || off > 127 {
				return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: jump to %q spans %d bytes (max ±128); use pushcl+jumps", st.line, ErrSyntax, st.args[0], off)
			}
			code = append(code, byte(int8(off)))

		case vm.OperandHeap: // getvar, setvar
			v, err := resolve(st.args[0], st)
			if err != nil {
				return nil, vm.VerifyReport{}, nil, err
			}
			if v < 0 || int(v) >= vm.HeapSlots {
				return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: heap address %q = %d out of [0,%d)", st.line, ErrSyntax, st.args[0], v, vm.HeapSlots)
			}
			code = append(code, byte(v))

		default:
			return nil, vm.VerifyReport{}, nil, fmt.Errorf("line %d: %w: internal: unhandled operand kind for %s", st.line, ErrSyntax, st.info.Name)
		}
	}

	// Static verification with findings mapped back to source lines.
	rep, err := vm.Verify(code)
	if err != nil {
		errs := make([]error, 0, len(rep.Errors))
		for _, ve := range rep.Errors {
			errs = append(errs, fmt.Errorf("line %d: %w: %s", lineOf(stmts, ve.PC), ErrVerify, ve.Msg))
		}
		return nil, vm.VerifyReport{}, nil, errors.Join(errs...)
	}
	return code, rep, stmts, nil
}

// lineOf maps a byte address to the source line of the instruction
// holding it.
func lineOf(stmts []stmt, pc int) int {
	line := 0
	for _, st := range stmts {
		if st.addr > pc {
			break
		}
		line = st.line
	}
	return line
}

func checkArity(st stmt) error {
	want := 1
	switch st.info.Kind {
	case vm.OperandNone:
		want = 0
	case vm.OperandLoc:
		want = 2
	}
	if len(st.args) != want {
		return fmt.Errorf("line %d: %w: %s takes %d operand(s), got %d", st.line, ErrSyntax, st.info.Name, want, len(st.args))
	}
	return nil
}

func parseInt(s string, lo, hi int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %q is not an integer", ErrSyntax, s)
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("%w: %q = %d out of [%d,%d]", ErrSyntax, s, v, lo, hi)
	}
	return v, nil
}

func isLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		case r >= 'a' && r <= 'z':
			// Lowercase tokens are mnemonics, not labels.
			return false
		default:
			return false
		}
	}
	return true
}

// isAddrMarker reports whether tok is a disassembler address prefix like
// "12:".
func isAddrMarker(tok string) bool {
	if len(tok) < 2 || tok[len(tok)-1] != ':' {
		return false
	}
	for _, r := range tok[:len(tok)-1] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// MustAssemble assembles src and panics on error. For tests and the
// built-in example agents only.
func MustAssemble(src string) []byte {
	code, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return code
}

// Disassemble renders bytecode as assembly text, one instruction per
// line, with byte addresses. The output reassembles to the identical
// bytecode (address markers are ignored by Assemble).
func Disassemble(code []byte) (string, error) {
	var sb strings.Builder
	pc := 0
	for pc < len(code) {
		n, err := vm.Size(code, pc)
		if err != nil {
			return "", err
		}
		op := vm.Op(code[pc])
		info, _ := vm.Lookup(op)
		fmt.Fprintf(&sb, "%4d: %s", pc, info.Name)
		operands := code[pc+1 : pc+n]
		switch info.Kind {
		case vm.OperandU8, vm.OperandType, vm.OperandSensor, vm.OperandHeap:
			fmt.Fprintf(&sb, " %d", operands[0])
		case vm.OperandS16:
			fmt.Fprintf(&sb, " %d", int16(uint16(operands[0])<<8|uint16(operands[1])))
		case vm.OperandName3:
			name := strings.TrimRight(string(operands), "\x00")
			fmt.Fprintf(&sb, " %s", name)
		case vm.OperandLoc:
			fmt.Fprintf(&sb, " %d %d", int8(operands[0]), int8(operands[1]))
		case vm.OperandRel:
			fmt.Fprintf(&sb, " %d", int8(operands[0]))
		}
		sb.WriteByte('\n')
		pc += n
	}
	return sb.String(), nil
}

// Validate walks the bytecode verifying every instruction decodes; it
// returns the instruction count. For full static checks use vm.Verify.
func Validate(code []byte) (int, error) {
	pc, n := 0, 0
	for pc < len(code) {
		sz, err := vm.Size(code, pc)
		if err != nil {
			return n, err
		}
		pc += sz
		n++
	}
	return n, nil
}
