// Package sensor models the MICA2 sensor board. The paper's agents sample
// sensors with the sense instruction and discover which sensors a node
// carries through pre-defined tuples Agilla places in the local tuple space
// (§2.2: "If a node has a thermometer, Agilla would insert a 'temperature
// tuple' into its tuple space").
//
// Readings come from an environment Field so scenarios (the fire-spread
// case study, a constant lab bench, a per-node lookup table) can drive what
// every node senses over virtual time.
package sensor

import (
	"time"

	"github.com/agilla-go/agilla/internal/topology"
	"github.com/agilla-go/agilla/internal/tuplespace"
)

// Field supplies the physical quantity a sensor measures, as a function of
// place, sensor type, and virtual time.
type Field interface {
	Sample(loc topology.Location, s tuplespace.SensorType, now time.Duration) int16
}

// FieldFunc adapts a function to the Field interface.
type FieldFunc func(loc topology.Location, s tuplespace.SensorType, now time.Duration) int16

// Sample implements Field.
func (f FieldFunc) Sample(loc topology.Location, s tuplespace.SensorType, now time.Duration) int16 {
	return f(loc, s, now)
}

// Constant is a field that reads the same value everywhere, forever.
type Constant int16

// Sample implements Field.
func (c Constant) Sample(topology.Location, tuplespace.SensorType, time.Duration) int16 {
	return int16(c)
}

// MapField reads per-(location, sensor) values from a mutable table,
// falling back to a default. Useful for scripted tests.
type MapField struct {
	Default int16
	values  map[mapKey]int16
}

type mapKey struct {
	loc topology.Location
	s   tuplespace.SensorType
}

// NewMapField creates an empty table with the given default reading.
func NewMapField(def int16) *MapField {
	return &MapField{Default: def, values: make(map[mapKey]int16)}
}

// Set fixes the reading for one location and sensor.
func (m *MapField) Set(loc topology.Location, s tuplespace.SensorType, v int16) {
	m.values[mapKey{loc, s}] = v
}

// Clear removes an override.
func (m *MapField) Clear(loc topology.Location, s tuplespace.SensorType) {
	delete(m.values, mapKey{loc, s})
}

// Sample implements Field.
func (m *MapField) Sample(loc topology.Location, s tuplespace.SensorType, _ time.Duration) int16 {
	if v, ok := m.values[mapKey{loc, s}]; ok {
		return v
	}
	return m.Default
}

// Board is the set of sensors one mote carries, bound to a field.
type Board struct {
	loc   topology.Location
	field Field
	// sensors is a presence bitmask indexed by SensorType — sense runs on
	// every monitor-loop iteration of every mote, so the check must not
	// pay a map lookup.
	sensors uint64
	// samples counts sense operations, for the energy/overhead accounting.
	samples uint64
}

// sensorBit returns the presence-mask bit for s, 0 for types outside the
// representable range (which therefore read as absent).
func sensorBit(s tuplespace.SensorType) uint64 {
	if s < 0 || s > 63 {
		return 0
	}
	return 1 << uint(s)
}

// NewBoard creates a board at loc with the given sensors. A nil field reads
// zero everywhere.
func NewBoard(loc topology.Location, field Field, sensors ...tuplespace.SensorType) *Board {
	b := &Board{loc: loc, field: field}
	for _, s := range sensors {
		b.sensors |= sensorBit(s)
	}
	return b
}

// DefaultSensors is the standard MICA2 sensor-board complement used by the
// simulated deployment.
func DefaultSensors() []tuplespace.SensorType {
	return []tuplespace.SensorType{
		tuplespace.SensorTemperature,
		tuplespace.SensorPhoto,
		tuplespace.SensorSound,
	}
}

// Has reports whether the board carries sensor s.
func (b *Board) Has(s tuplespace.SensorType) bool { return b.sensors&sensorBit(s) != 0 }

// MoveTo rebinds the board to a new location (the mote moved): future
// samples read the field at the new position.
func (b *Board) MoveTo(loc topology.Location) { b.loc = loc }

// Types returns the sensors on the board in ascending type order.
func (b *Board) Types() []tuplespace.SensorType {
	var out []tuplespace.SensorType
	for s := tuplespace.SensorTemperature; s <= tuplespace.SensorSmoke; s++ {
		if b.Has(s) {
			out = append(out, s)
		}
	}
	return out
}

// Samples returns how many sense operations have been served.
func (b *Board) Samples() uint64 { return b.samples }

// Sense samples sensor s at virtual time now; ok is false if the board does
// not carry that sensor.
func (b *Board) Sense(s tuplespace.SensorType, now time.Duration) (int16, bool) {
	if b.sensors&sensorBit(s) == 0 {
		return 0, false
	}
	b.samples++
	if b.field == nil {
		return 0, true
	}
	return b.field.Sample(b.loc, s, now), true
}

// ContextTuples returns the pre-defined sensor-availability tuples Agilla
// inserts into the node's tuple space at boot so agents can discover what
// the node can sense (§2.2). Each is <"sns", zero-reading-of-sensor>, so an
// agent probes with the template <"sns", sensor-type-wildcard>.
func (b *Board) ContextTuples() []tuplespace.Tuple {
	var out []tuplespace.Tuple
	for _, s := range b.Types() {
		out = append(out, tuplespace.T(
			tuplespace.Str("sns"),
			tuplespace.Reading(s, 0),
		))
	}
	return out
}
