package sensor

import (
	"testing"
	"time"

	"github.com/agilla-go/agilla/internal/topology"
	"github.com/agilla-go/agilla/internal/tuplespace"
)

func TestConstantField(t *testing.T) {
	b := NewBoard(topology.Loc(1, 1), Constant(25), tuplespace.SensorTemperature)
	v, ok := b.Sense(tuplespace.SensorTemperature, 0)
	if !ok || v != 25 {
		t.Errorf("Sense = %d,%v; want 25,true", v, ok)
	}
}

func TestMissingSensor(t *testing.T) {
	b := NewBoard(topology.Loc(1, 1), Constant(25), tuplespace.SensorTemperature)
	if _, ok := b.Sense(tuplespace.SensorSmoke, 0); ok {
		t.Error("smoke sensor should be absent")
	}
	if b.Samples() != 0 {
		t.Error("failed sense must not count as a sample")
	}
}

func TestMapFieldOverrides(t *testing.T) {
	f := NewMapField(10)
	f.Set(topology.Loc(2, 2), tuplespace.SensorTemperature, 300)

	b1 := NewBoard(topology.Loc(2, 2), f, tuplespace.SensorTemperature)
	b2 := NewBoard(topology.Loc(3, 3), f, tuplespace.SensorTemperature)

	if v, _ := b1.Sense(tuplespace.SensorTemperature, 0); v != 300 {
		t.Errorf("override not applied: %d", v)
	}
	if v, _ := b2.Sense(tuplespace.SensorTemperature, 0); v != 10 {
		t.Errorf("default not applied: %d", v)
	}

	f.Clear(topology.Loc(2, 2), tuplespace.SensorTemperature)
	if v, _ := b1.Sense(tuplespace.SensorTemperature, 0); v != 10 {
		t.Errorf("clear not applied: %d", v)
	}
}

func TestFieldFunc(t *testing.T) {
	f := FieldFunc(func(loc topology.Location, s tuplespace.SensorType, now time.Duration) int16 {
		return int16(now / time.Second)
	})
	b := NewBoard(topology.Loc(1, 1), f, tuplespace.SensorPhoto)
	if v, _ := b.Sense(tuplespace.SensorPhoto, 5*time.Second); v != 5 {
		t.Errorf("time-varying field broken: %d", v)
	}
}

func TestNilField(t *testing.T) {
	b := NewBoard(topology.Loc(1, 1), nil, tuplespace.SensorSound)
	v, ok := b.Sense(tuplespace.SensorSound, 0)
	if !ok || v != 0 {
		t.Errorf("nil field should read zero: %d,%v", v, ok)
	}
}

func TestSampleCounting(t *testing.T) {
	b := NewBoard(topology.Loc(1, 1), Constant(1), tuplespace.SensorTemperature)
	for i := 0; i < 5; i++ {
		b.Sense(tuplespace.SensorTemperature, 0)
	}
	if b.Samples() != 5 {
		t.Errorf("Samples = %d, want 5", b.Samples())
	}
}

func TestTypesSorted(t *testing.T) {
	b := NewBoard(topology.Loc(1, 1), nil,
		tuplespace.SensorSmoke, tuplespace.SensorTemperature, tuplespace.SensorPhoto)
	got := b.Types()
	want := []tuplespace.SensorType{
		tuplespace.SensorTemperature, tuplespace.SensorPhoto, tuplespace.SensorSmoke,
	}
	if len(got) != len(want) {
		t.Fatalf("Types = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Types[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestContextTuples(t *testing.T) {
	b := NewBoard(topology.Loc(1, 1), nil, tuplespace.SensorTemperature, tuplespace.SensorPhoto)
	tuples := b.ContextTuples()
	if len(tuples) != 2 {
		t.Fatalf("ContextTuples = %d entries, want 2", len(tuples))
	}
	// An agent looking for a thermometer matches with <"sns", temperature-type>.
	probe := tuplespace.Tmpl(
		tuplespace.Str("sns"),
		tuplespace.TypeV(tuplespace.TypeOfSensor(tuplespace.SensorTemperature)),
	)
	found := false
	for _, tp := range tuples {
		if probe.Matches(tp) {
			found = true
		}
	}
	if !found {
		t.Error("temperature context tuple not discoverable by template")
	}
}

func TestDefaultSensors(t *testing.T) {
	ds := DefaultSensors()
	if len(ds) != 3 {
		t.Fatalf("DefaultSensors = %v", ds)
	}
	b := NewBoard(topology.Loc(1, 1), nil, ds...)
	if !b.Has(tuplespace.SensorTemperature) || b.Has(tuplespace.SensorSmoke) {
		t.Error("default board contents wrong")
	}
}
