package agilla_test

// Tests for the public agent-programming surface: Network.Launch fed by
// the program package's three authoring forms, and the typed
// ErrNoSuchNode across every location-addressed entry point.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/agilla-go/agilla"
	"github.com/agilla-go/agilla/program"
)

func quietNetwork(t *testing.T) *agilla.Network {
	t.Helper()
	nw, err := agilla.New(
		agilla.WithTopology(agilla.Grid(3, 3)),
		agilla.WithSeed(1),
		agilla.WithReliableRadio(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestLaunchBuilderProgram(t *testing.T) {
	nw := quietNetwork(t)
	dest := agilla.Loc(2, 2)

	p, err := program.New("greeter").
		PushN("hi").Loc().PushC(2).Out().
		Halt().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ag, err := nw.Launch(p, dest)
	if err != nil {
		t.Fatal(err)
	}
	if done, err := ag.WaitDone(30 * time.Second); err != nil || !done {
		t.Fatalf("agent did not finish: done=%v err=%v (%v)", done, err, ag)
	}
	if _, ok := nw.Space(dest).Rdp(agilla.Tmpl(agilla.Str("hi"), agilla.TypeV(3))); !ok {
		t.Error("greeting tuple missing at destination")
	}
}

func TestLaunchLibraryProgram(t *testing.T) {
	nw := quietNetwork(t)
	e, ok := program.Get("blink")
	if !ok {
		t.Fatal("library missing blink")
	}
	ag, err := nw.Launch(e.Program, agilla.Loc(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if done, _ := ag.WaitDone(30 * time.Second); !done {
		t.Fatalf("blink did not finish: %v", ag)
	}
	if nw.Node(agilla.Loc(1, 2)).LED() != 7 {
		t.Error("blink did not drive the LEDs")
	}
}

func TestLaunchCombinatorProgramRuns(t *testing.T) {
	// A ForEachNeighbor program must actually iterate the acquaintance
	// list at runtime: count neighbors into <"cnt", n> via a heap slot.
	nw := quietNetwork(t)
	dest := agilla.Loc(2, 2)

	p := program.New("census").
		PushC(0).SetVar(0).
		ForEachNeighbor(1, func(b *program.Builder) {
			b.Pop().GetVar(0).Inc().SetVar(0)
		}).
		PushN("cnt").GetVar(0).PushC(2).Out().
		Halt().
		MustBuild()
	ag, err := nw.Launch(p, dest)
	if err != nil {
		t.Fatal(err)
	}
	if done, _ := ag.WaitDone(time.Minute); !done {
		t.Fatalf("census did not finish: %v", ag)
	}
	tup, ok := nw.Space(dest).Rdp(agilla.Tmpl(agilla.Str("cnt"), agilla.TypeV(1)))
	if !ok {
		t.Fatal("census tuple missing")
	}
	// The middle of a 3x3 grid corner region: (2,2) hears all 8 other
	// motes plus the base station with the default 1.5-cell range? The
	// exact count depends on the radio range; it must at least be >= 2.
	if n := tup.Fields[1].A; n < 2 {
		t.Errorf("neighbor census = %d, want >= 2", n)
	}
}

func TestLaunchNilProgram(t *testing.T) {
	nw := quietNetwork(t)
	if _, err := nw.Launch(nil, agilla.Loc(1, 1)); err == nil {
		t.Error("nil program must fail")
	}
}

func TestErrNoSuchNodeTyped(t *testing.T) {
	nw := quietNetwork(t)
	nowhere := agilla.Loc(40, 40)
	p := program.MustParse("halt")

	if _, err := nw.Launch(p, nowhere); !errors.Is(err, agilla.ErrNoSuchNode) {
		t.Errorf("Launch: %v does not wrap ErrNoSuchNode", err)
	}
	if _, err := nw.Inject("halt", nowhere); !errors.Is(err, agilla.ErrNoSuchNode) {
		t.Errorf("Inject: %v does not wrap ErrNoSuchNode", err)
	}
	if _, err := nw.InjectCode(p.Bytes(), nowhere); !errors.Is(err, agilla.ErrNoSuchNode) {
		t.Errorf("InjectCode: %v does not wrap ErrNoSuchNode", err)
	}
	if err := nw.Space(nowhere).Out(agilla.T(agilla.Int(1))); !errors.Is(err, agilla.ErrNoSuchNode) {
		t.Errorf("Space.Out: %v does not wrap ErrNoSuchNode", err)
	}
	if err := nw.Remote().Rout(nowhere, agilla.T(agilla.Int(1))); !errors.Is(err, agilla.ErrNoSuchNode) {
		t.Errorf("Remote.Rout: %v does not wrap ErrNoSuchNode", err)
	}
	if _, _, err := nw.Remote().Rrdp(nowhere, agilla.Tmpl(agilla.Int(1))); !errors.Is(err, agilla.ErrNoSuchNode) {
		t.Errorf("Remote.Rrdp: %v does not wrap ErrNoSuchNode", err)
	}
}

func TestInjectRejectsUnverifiableSource(t *testing.T) {
	nw := quietNetwork(t)
	// Guaranteed stack underflow: the verifier must stop it at the base
	// station, with a position, before anything ships over the radio.
	_, err := nw.Inject("pushc 1\npop\npop\nhalt", agilla.Loc(1, 1))
	if err == nil {
		t.Fatal("unverifiable source must be rejected")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "underflow") {
		t.Errorf("error %q lacks position or cause", err)
	}
}

func TestInjectCodeVerifiesBytes(t *testing.T) {
	nw := quietNetwork(t)
	if _, err := nw.InjectCode([]byte{0xee}, agilla.Loc(1, 1)); !errors.Is(err, program.ErrVerify) {
		t.Errorf("InjectCode(garbage): %v does not wrap program.ErrVerify", err)
	}
}
