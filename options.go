package agilla

import (
	"fmt"
	"time"

	"github.com/agilla-go/agilla/internal/core"
	"github.com/agilla-go/agilla/internal/radio"
	"github.com/agilla-go/agilla/internal/transport"
	"github.com/agilla-go/agilla/program"
)

// RadioParams configures the radio latency/loss model. LossyRadio returns
// the calibrated testbed model, ReliableRadio a zero-loss variant.
type RadioParams = radio.Params

// LossyRadio returns the calibrated lossy CC1000 model that regenerates
// the paper's Figures 9-11. It is the default.
func LossyRadio() RadioParams { return radio.Lossy() }

// ReliableRadio returns a zero-loss channel with CC1000 timing; useful
// for tests and latency measurements that should not be confounded by
// loss.
func ReliableRadio() RadioParams { return radio.ZeroLoss() }

// Replication configures the gossip CRDT replication layer: each mote's
// tuple space doubles as a replicated two-phase set synchronized to K
// radio neighbors by anti-entropy gossip every Period, tuple keys hash to
// one of Groups affinity groups for routed lookups, and MaxEntries caps
// each mote's replica store. Zero fields select defaults (K=2, Period=
// 500ms, Groups=4, MaxEntries=128). See WithReplication and the README's
// "Replication" section.
type Replication = core.Replication

// settings is the resolved configuration behind New.
type settings struct {
	topo        Topology
	seed        int64
	radio       *radio.Params
	field       Field
	node        NodeConfig
	energy      *EnergyModel
	workers     int
	replication *core.Replication
	admission   *float64
	bridge      *BridgeConfig
}

// Option configures New.
type Option func(*settings)

// WithTopology selects the deployment layout. The default is the paper's
// 5×5 grid.
func WithTopology(t Topology) Option { return func(s *settings) { s.topo = t } }

// WithSeed sets the seed driving all randomness — radio loss, beacon
// offsets, and randomized topology placement. Runs are reproducible per
// seed.
func WithSeed(seed int64) Option { return func(s *settings) { s.seed = seed } }

// WithRadio selects the radio latency/loss model.
func WithRadio(p RadioParams) Option {
	return func(s *settings) { cp := p; s.radio = &cp }
}

// WithReliableRadio is shorthand for WithRadio(ReliableRadio()).
func WithReliableRadio() Option { return WithRadio(ReliableRadio()) }

// WithField drives sensor readings over space and time (default:
// everything reads 0).
func WithField(f Field) Option { return func(s *settings) { s.field = f } }

// WithNodeConfig overrides per-mote middleware budgets and protocol
// timers; zero fields keep the paper's defaults from §3.2.
func WithNodeConfig(cfg NodeConfig) Option {
	return func(s *settings) { s.node = cfg }
}

// WithEnergy gives every mote a battery under the given model: joule
// costs per VM instruction, radio send/receive, and sensor sample, plus
// idle drain. A mote whose battery empties dies exactly there
// (EnergyExhausted then NodeDied events) and the network routes around
// it; ReviveAt/Revive boots it with fresh cells. The base station is
// mains powered. Start from DefaultEnergyModel and adjust CapacityJ to
// taste.
func WithEnergy(m EnergyModel) Option {
	return func(s *settings) { cp := m; s.energy = &cp }
}

// WithAdmissionBudget turns on static admission control in Launch: every
// program is run through the dataflow and energy analysis
// (program.Analyze) with the deployment's energy calibration, and agents
// the analysis cannot certify are rejected with ErrAdmission before any
// radio traffic is spent on them. Rejected are programs with error-level
// findings (guaranteed stack faults, type mismatches, reads of
// never-written heap slots), programs with no finite per-burst energy
// bound, and — when budgetJ > 0 — programs whose bound exceeds budgetJ
// joules per burst. A budgetJ of 0 (or negative) rejects only uncertifiable
// programs without capping the bound.
//
// The calibration follows WithEnergy's model when one is set, else
// DefaultEnergyModel; only the per-instruction, send, and sense costs
// enter the static bound.
func WithAdmissionBudget(budgetJ float64) Option {
	return func(s *settings) { s.admission = &budgetJ }
}

// WithReplication turns on the gossip CRDT replication layer: every mote
// gossips its tuple-space replica to k radio neighbors each period, so a
// tuple survives its node's death, a remote rrdp/rinp can be answered
// from any mote's replica when the arena misses, and a recovered mote
// gets its own tuples streamed back by its neighbors (TupleRecovered
// events). Values of 0 select the defaults (k=2, period 500ms). Gossip
// frames cost energy under WithEnergy like all other radio traffic.
// For the remaining knobs (affinity Groups, MaxEntries) use
// WithReplicationConfig.
func WithReplication(k int, period time.Duration) Option {
	return WithReplicationConfig(Replication{K: k, Period: period})
}

// WithReplicationConfig is WithReplication with every knob exposed.
func WithReplicationConfig(r Replication) Option {
	return func(s *settings) { cp := r; s.replication = &cp }
}

// WithWorkers runs the simulation kernel on n parallel workers. The
// deployment is partitioned into n spatial shards that execute
// concurrently inside time windows bounded by the radio's minimum frame
// delay, with cross-shard frames exchanged at window barriers — so the
// schedule every node observes is event-for-event identical to the
// default sequential kernel for the same seed, while large deployments
// use all n cores. Values of 0 or 1 keep the sequential kernel.
//
// Two caveats. RunUntil and Scenario.Until predicates are evaluated at
// window barriers (roughly every 21 ms of virtual time under the default
// radio), not after every event, so predicate-bounded runs may advance up
// to one window past the triggering instant; time-bounded runs are exact.
// And the Events channel may interleave events from concurrently
// executing nodes in nondeterministic order — see Events.
func WithWorkers(n int) Option { return func(s *settings) { s.workers = n } }

// New builds a deployment from functional options. With no options it
// builds the paper's testbed: a 5×5 MICA2 grid with the calibrated lossy
// CC1000 model, a base station at (0,0) bridged to the gateway mote
// (1,1), and per-node budgets from §3.2 (4 agents, 440 B instruction
// memory, 600 B tuple space, 400 B reaction registry).
func New(opts ...Option) (*Network, error) {
	var s settings
	for _, opt := range opts {
		opt(&s)
	}
	if s.topo.realize == nil {
		// No topology given, or the zero Topology: both mean "the
		// default testbed", mirroring Scenario.Topology's zero value.
		s.topo = defaultTopology()
	}
	layout, err := s.topo.realize(s.seed)
	if err != nil {
		return nil, fmt.Errorf("agilla: %w", err)
	}
	spec := core.DeploymentSpec{
		Layout:      layout,
		Seed:        s.seed,
		Radio:       s.radio,
		Node:        s.node,
		Field:       s.field,
		Energy:      s.energy,
		Workers:     s.workers,
		Replication: s.replication,
	}
	var peers map[Location]transport.Addr
	if s.bridge != nil {
		pruned, p, baseLoc, err := planBridge(layout, s.bridge)
		if err != nil {
			return nil, err
		}
		spec.Layout, peers = pruned, p
		bl := baseLoc
		spec.BaseLoc = &bl
	}
	d, err := core.NewDeployment(spec)
	if err != nil {
		return nil, fmt.Errorf("agilla: %w", err)
	}
	nw := &Network{d: d}
	if s.bridge != nil {
		tr, err := transport.Open(transport.Addr(s.bridge.Listen))
		if err != nil {
			return nil, fmt.Errorf("agilla: %w", err)
		}
		local := append(d.Locations(), *spec.BaseLoc)
		br, err := transport.NewBridge(tr, d.Medium, local, peers)
		if err != nil {
			return nil, fmt.Errorf("agilla: %w", err)
		}
		nw.bridge = br
		nw.quantum = s.bridge.Quantum
		if nw.quantum <= 0 {
			nw.quantum = bridgeQuantumDefault
		}
		nw.idle = defaultBridgeIdle
	}
	if s.admission != nil {
		model := core.DefaultEnergyModel()
		if s.energy != nil {
			model = *s.energy
		}
		c := model.VMCosts()
		nw.admission = &admission{
			budgetJ: *s.admission,
			costs: program.EnergyCosts{
				InstrNJ:    c.InstrNJ,
				SendNJ:     c.SendNJ,
				SendByteNJ: c.SendByteNJ,
				SenseNJ:    c.SenseNJ,
			},
		}
	}
	return nw, nil
}

// Options configures a simulated deployment for NewNetwork. It predates
// the functional options of New and remains as a compatibility shim; the
// zero value builds the paper's testbed.
type Options struct {
	// Width and Height size the mote grid (default 5×5).
	Width, Height int
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// Reliable selects a zero-loss radio (default: the calibrated lossy
	// model that regenerates the paper's Figures 9-11).
	Reliable bool
	// Field drives sensor readings (default: everything reads 0).
	Field Field
	// NodeConfig overrides per-mote middleware budgets and protocol
	// timers; nil selects the paper's defaults.
	NodeConfig *NodeConfig
}

// NewNetwork builds a grid deployment per the options. New code should
// prefer New with functional options, which also unlocks non-grid
// topologies.
func NewNetwork(opts Options) (*Network, error) {
	if opts.Width <= 0 {
		opts.Width = 5
	}
	if opts.Height <= 0 {
		opts.Height = 5
	}
	o := []Option{
		WithTopology(Grid(opts.Width, opts.Height)),
		WithSeed(opts.Seed),
	}
	if opts.Reliable {
		o = append(o, WithReliableRadio())
	}
	if opts.Field != nil {
		o = append(o, WithField(opts.Field))
	}
	if opts.NodeConfig != nil {
		o = append(o, WithNodeConfig(*opts.NodeConfig))
	}
	return New(o...)
}
