package agilla_test

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/agilla-go/agilla"
)

// TestCloseDrainsAndReleasesGoroutines pins the Network.Close contract:
// events published before Close stay deliverable in order, channels close
// once drained, post-Close subscriptions are born closed, and every pump
// goroutine exits once its channel has been drained.
func TestCloseDrainsAndReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	nw, err := agilla.New(
		agilla.WithTopology(agilla.Grid(3, 1)),
		agilla.WithReliableRadio(),
		agilla.WithSeed(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	all := nw.Events()
	tuples := nw.Events(agilla.OfKind(agilla.EventTupleOut))
	watch := nw.Space(agilla.Loc(2, 1)).Watch(agilla.Tmpl(agilla.Str("png")))
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	if err := nw.Space(agilla.Loc(2, 1)).Out(agilla.T(agilla.Str("png"))); err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Close with everything still queued; nothing may be lost.
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nw.Close(); err != nil {
		t.Fatal("Close is not idempotent:", err)
	}

	nAll, nTuples, nWatch := 0, 0, 0
	for range all {
		nAll++
	}
	for e := range tuples {
		if e.Kind() != agilla.EventTupleOut {
			t.Fatalf("filtered channel leaked %v", e)
		}
		nTuples++
	}
	for range watch {
		nWatch++
	}
	if nAll == 0 || nTuples == 0 {
		t.Fatalf("queued events lost at Close: all=%d tuples=%d", nAll, nTuples)
	}
	if nWatch != 1 {
		t.Fatalf("watch delivered %d matches, want 1", nWatch)
	}

	// A subscription made after Close is born closed.
	if _, open := <-nw.Events(); open {
		t.Fatal("post-Close subscription delivered an event")
	}
	if _, open := <-nw.Space(agilla.Loc(2, 1)).Watch(agilla.Tmpl(agilla.Str("png"))); open {
		t.Fatal("post-Close watch delivered a tuple")
	}

	// All pump goroutines must exit once their channels are drained.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWatchClosesOnNodeDeath pins the Watch termination contract: a watch
// on a node that dies delivers its already-queued matches and then its
// channel closes — it does not dangle open until Network.Close — while
// watches on surviving nodes keep delivering. Before this contract a
// dashboard ranging over a crashed mote's watch hung forever (or until
// teardown), with the pump goroutine pinned alongside it.
func TestWatchClosesOnNodeDeath(t *testing.T) {
	before := runtime.NumGoroutine()

	nw, err := agilla.New(
		agilla.WithTopology(agilla.Grid(3, 1)),
		agilla.WithReliableRadio(),
		agilla.WithSeed(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	victim, survivor := agilla.Loc(2, 1), agilla.Loc(3, 1)
	doomed := nw.Space(victim).Watch(agilla.Tmpl(agilla.Str("png")))
	alive := nw.Space(survivor).Watch(agilla.Tmpl(agilla.Str("png")))
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	if err := nw.Space(victim).Out(agilla.T(agilla.Str("png"))); err != nil {
		t.Fatal(err)
	}
	if err := nw.Kill(victim); err != nil {
		t.Fatal(err)
	}
	// Kill schedules the crash on the virtual clock; advance past it.
	if err := nw.Run(time.Second); err != nil {
		t.Fatal(err)
	}

	// The doomed watch must yield its queued match and then close, without
	// any Network.Close: ranging terminates.
	got := 0
	for range doomed {
		got++
	}
	if got != 1 {
		t.Fatalf("doomed watch delivered %d matches, want 1", got)
	}

	// A revival boots a fresh space; the old watch stays closed and a
	// re-Watch observes the new incarnation.
	if err := nw.Revive(victim); err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	rewatch := nw.Space(victim).Watch(agilla.Tmpl(agilla.Str("png")))
	if err := nw.Space(victim).Out(agilla.T(agilla.Str("png"))); err != nil {
		t.Fatal(err)
	}
	if tu := <-rewatch; len(tu.Fields) == 0 {
		t.Fatal("re-watch after revival delivered nothing")
	}

	// The survivor's watch is untouched by its neighbor's death.
	if err := nw.Space(survivor).Out(agilla.T(agilla.Str("png"))); err != nil {
		t.Fatal(err)
	}
	if tu := <-alive; len(tu.Fields) == 0 {
		t.Fatal("survivor watch delivered nothing")
	}

	// Close remains idempotent with the death-path teardown: the doomed
	// watch was already closed once.
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
	for range rewatch {
	}
	for range alive {
	}

	// No pump goroutine may outlive its drained channel — the leak this
	// contract exists to prevent.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDiskConnectivityCheck is the regression for disconnected
// random-disk deployments: they must fail fast with a typed error, be
// probeable via Connected, and be recoverable via FindConnectedSeed —
// never silently stall a scenario.
func TestDiskConnectivityCheck(t *testing.T) {
	// A marginal density (roughly half of all placements partition even
	// after the sampler's internal redraws): some seed will partition it.
	// Find one deterministically.
	sparse := agilla.RandomDisk(12, 8, 2.0)
	badSeed := int64(-1)
	for s := int64(0); s < 200; s++ {
		ok, err := sparse.Connected(s)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			badSeed = s
			break
		}
	}
	if badSeed < 0 {
		t.Skip("no partitioned seed in probe range; density too forgiving")
	}

	// New must refuse it with the typed error, not deploy a stalling net.
	_, err := agilla.New(agilla.WithTopology(sparse), agilla.WithSeed(badSeed))
	if !errors.Is(err, agilla.ErrDisconnected) {
		t.Fatalf("New on partitioned disk: %v, want ErrDisconnected", err)
	}

	// A scenario over it fails fast for the same reason.
	s := &agilla.Scenario{Name: "partitioned", Topology: sparse, Duration: time.Second}
	if _, err := s.Run(badSeed); !errors.Is(err, agilla.ErrDisconnected) {
		t.Fatalf("Scenario.Run: %v, want ErrDisconnected", err)
	}

	// The seeded retry finds a connected placement nearby...
	good, ok := sparse.FindConnectedSeed(badSeed, 256)
	if !ok {
		t.Fatal("FindConnectedSeed found nothing in 256 tries")
	}
	if connected, err := sparse.Connected(good); err != nil || !connected {
		t.Fatalf("Connected(%d) = %v, %v after FindConnectedSeed", good, connected, err)
	}
	// ...and that placement actually deploys.
	if _, err := agilla.New(agilla.WithTopology(sparse), agilla.WithSeed(good)); err != nil {
		t.Fatalf("New on found seed: %v", err)
	}

	// Fixed topologies report connected, and the zero Topology (default
	// grid) works too.
	if connected, err := agilla.Grid(4, 4).Connected(0); err != nil || !connected {
		t.Fatalf("grid Connected = %v, %v", connected, err)
	}
	var zero agilla.Topology
	if connected, err := zero.Connected(0); err != nil || !connected {
		t.Fatalf("zero topology Connected = %v, %v", connected, err)
	}
	// Invalid parameters still surface as real errors.
	if _, err := agilla.RandomDisk(0, 1, -1).Connected(0); err == nil {
		t.Fatal("invalid disk parameters must error")
	}
}
