package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a snapshot file into the test's temp dir.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseRows = `[
  {"transport": "loopback", "frames": 50000, "bytes": 1935703, "received": 50000,
   "batches": 50000, "frames_per_batch": 1, "wall_secs": 0.03, "frames_per_sec": 1600000},
  {"transport": "udp", "frames": 50000, "bytes": 1935703, "received": 49000,
   "batches": 1172, "frames_per_batch": 42.7, "wall_secs": 0.025, "frames_per_sec": 2000000}
]`

func runDiff(t *testing.T, args ...string) (code int, out, errOut string) {
	t.Helper()
	var o, e strings.Builder
	code = run(args, &o, &e)
	return code, o.String(), e.String()
}

func TestIdenticalSnapshotsPass(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", baseRows)
	b := write(t, dir, "b.json", baseRows)
	code, out, errOut := runDiff(t, a, b)
	if code != 0 {
		t.Fatalf("identical snapshots exit %d\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "transport=udp") {
		t.Fatalf("report does not name the udp row:\n%s", out)
	}
}

func TestMeasuredDriftInsideBandPasses(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", baseRows)
	// 10% faster and slightly different batch count: inside ±25%.
	b := write(t, dir, "b.json", strings.NewReplacer(
		`"frames_per_sec": 2000000`, `"frames_per_sec": 2200000`,
		`"batches": 1172`, `"batches": 1180`,
	).Replace(baseRows))
	code, out, errOut := runDiff(t, a, b)
	if code != 0 {
		t.Fatalf("10%% drift must pass the default band, exit %d\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "+10.00%") {
		t.Fatalf("report does not show the drift:\n%s", out)
	}
}

func TestMeasuredDriftOutsideBandFails(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", baseRows)
	b := write(t, dir, "b.json", strings.Replace(baseRows,
		`"frames_per_sec": 2000000`, `"frames_per_sec": 900000`, 1))
	code, out, _ := runDiff(t, a, b)
	if code != 1 {
		t.Fatalf("55%% regression must fail, exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL outside") {
		t.Fatalf("report does not flag the band violation:\n%s", out)
	}
	// A wider band admits it.
	code, out, errOut := runDiff(t, "-tol", "0.6", a, b)
	if code != 0 {
		t.Fatalf("-tol 0.6 must admit a 55%% drift, exit %d\n%s%s", code, out, errOut)
	}
}

func TestDeterministicColumnMustMatchExactly(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", baseRows)
	b := write(t, dir, "b.json", strings.Replace(baseRows,
		`"frames": 50000, "bytes": 1935703, "received": 49000`,
		`"frames": 50001, "bytes": 1935703, "received": 49000`, 1))
	code, out, _ := runDiff(t, a, b)
	if code != 1 {
		t.Fatalf("a one-frame workload change must fail, exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "deterministic column changed") {
		t.Fatalf("report does not flag the deterministic change:\n%s", out)
	}
	// ...unless the column is ignored explicitly.
	code, _, _ = runDiff(t, "-ignore", "frames", a, b)
	if code != 0 {
		t.Fatalf("-ignore frames must admit the change, exit %d", code)
	}
}

func TestRowSetMismatchFails(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.json", baseRows)
	// Drop the udp row entirely.
	b := write(t, dir, "b.json", `[
  {"transport": "loopback", "frames": 50000, "bytes": 1935703, "received": 50000,
   "batches": 50000, "frames_per_batch": 1, "wall_secs": 0.03, "frames_per_sec": 1600000}
]`)
	code, out, _ := runDiff(t, a, b)
	if code != 1 {
		t.Fatalf("a vanished row must fail, exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "row missing from new snapshot") {
		t.Fatalf("report does not flag the missing row:\n%s", out)
	}
	// And the reverse direction: a row only in the new snapshot.
	code, out, _ = runDiff(t, b, a)
	if code != 1 || !strings.Contains(out, "row missing from old snapshot") {
		t.Fatalf("an appeared row must fail, exit %d\n%s", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runDiff(t); code != 2 {
		t.Fatal("no arguments must exit 2")
	}
	if code, _, _ := runDiff(t, "nope-a.json", "nope-b.json"); code != 2 {
		t.Fatal("unreadable files must exit 2")
	}
	dir := t.TempDir()
	empty := write(t, dir, "empty.json", `[]`)
	if code, _, _ := runDiff(t, empty, empty); code != 2 {
		t.Fatal("empty snapshots must exit 2")
	}
}
