// Command benchdiff compares two BENCH_*.json snapshots (the flat row
// arrays agilla-bench -json writes for the scale, churn, vm, and wire
// experiments) benchstat-style, and exits non-zero on a regression.
//
// Usage:
//
//	benchdiff [-tol 0.25] [-ignore col1,col2] OLD.json NEW.json
//
// Rows are matched across the two files by their identity columns —
// every string and bool field, plus the integer configuration fields
// (workers, nodes) — so reordering rows between runs is fine, while a
// row present in only one file is an error (a transport or scenario
// appeared or vanished).
//
// Within a matched pair, numeric columns split two ways:
//
//   - Measured columns — wall-clock rates and anything downstream of
//     them (names containing "per_", ending in "_secs", or in
//     {received, batches}) — legitimately vary run to run. They are
//     compared within the -tol relative band: |new-old|/old beyond the
//     band fails, inside it is reported but fine. A tolerance of 0.25
//     means ±25%.
//
//   - Everything else is treated as deterministic (frames, bytes,
//     events, hashes, counters the simulation fixes by construction)
//     and must match exactly.
//
// -ignore names columns to skip entirely, for comparisons where a
// column is expected to differ (for example comparing sweeps taken at
// different -workers counts).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(errOut)
	tol := fs.Float64("tol", 0.25, "relative tolerance band for measured columns (0.25 = ±25%)")
	ignore := fs.String("ignore", "", "comma-separated columns to skip entirely")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(errOut, "usage: benchdiff [-tol T] [-ignore cols] OLD.json NEW.json")
		return 2
	}
	oldRows, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(errOut, "benchdiff: %v\n", err)
		return 2
	}
	newRows, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(errOut, "benchdiff: %v\n", err)
		return 2
	}
	skip := map[string]bool{}
	for _, c := range strings.Split(*ignore, ",") {
		if c = strings.TrimSpace(c); c != "" {
			skip[c] = true
		}
	}
	report, failures := diff(oldRows, newRows, *tol, skip)
	fmt.Fprint(out, report)
	if failures > 0 {
		fmt.Fprintf(errOut, "benchdiff: %d failure(s) comparing %s to %s\n", failures, fs.Arg(0), fs.Arg(1))
		return 1
	}
	return 0
}

// row is one flat benchmark record.
type row map[string]any

// load reads one snapshot's row array.
func load(path string) ([]row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no rows", path)
	}
	return rows, nil
}

// identityInts are the numeric fields that configure a row rather than
// measure it, so they join the match key.
var identityInts = map[string]bool{"workers": true, "nodes": true}

// key renders a row's identity columns as a stable string.
func key(r row) string {
	parts := make([]string, 0, len(r))
	for k, v := range r {
		switch v := v.(type) {
		case string:
			parts = append(parts, fmt.Sprintf("%s=%s", k, v))
		case bool:
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		case float64:
			if identityInts[k] {
				parts = append(parts, fmt.Sprintf("%s=%v", k, v))
			}
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// measured reports whether a column is a wall-clock measurement (or
// downstream of one) and so gets the tolerance band instead of an exact
// match.
func measured(name string) bool {
	return strings.Contains(name, "per_") ||
		strings.HasSuffix(name, "_secs") ||
		name == "received" || name == "batches"
}

// diff compares the two row sets and renders a benchstat-style report,
// returning it with the failure count.
func diff(oldRows, newRows []row, tol float64, skip map[string]bool) (string, int) {
	var b strings.Builder
	failures := 0
	newByKey := make(map[string]row, len(newRows))
	for _, r := range newRows {
		newByKey[key(r)] = r
	}
	seen := make(map[string]bool, len(oldRows))
	for _, or := range oldRows {
		k := key(or)
		if seen[k] {
			continue
		}
		seen[k] = true
		nr, ok := newByKey[k]
		if !ok {
			fmt.Fprintf(&b, "%s\n  FAIL row missing from new snapshot\n", k)
			failures++
			continue
		}
		fmt.Fprintf(&b, "%s\n", k)
		cols := make([]string, 0, len(or))
		for c := range or {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, c := range cols {
			ov, isNum := or[c].(float64)
			if !isNum || identityInts[c] || skip[c] {
				continue
			}
			nv, ok := nr[c].(float64)
			if !ok {
				fmt.Fprintf(&b, "  %-18s FAIL column missing from new snapshot\n", c)
				failures++
				continue
			}
			switch {
			case !measured(c):
				if ov != nv {
					fmt.Fprintf(&b, "  %-18s %14.6g %14.6g  FAIL deterministic column changed\n", c, ov, nv)
					failures++
				}
			case ov == 0:
				if nv != 0 {
					fmt.Fprintf(&b, "  %-18s %14.6g %14.6g  FAIL old is zero, new is not\n", c, ov, nv)
					failures++
				}
			default:
				delta := (nv - ov) / ov
				verdict := ""
				if math.Abs(delta) > tol {
					verdict = fmt.Sprintf("  FAIL outside ±%.0f%% band", tol*100)
					failures++
				}
				fmt.Fprintf(&b, "  %-18s %14.6g %14.6g  %+7.2f%%%s\n", c, ov, nv, delta*100, verdict)
			}
		}
	}
	for _, nr := range newRows {
		if k := key(nr); !seen[k] {
			fmt.Fprintf(&b, "%s\n  FAIL row missing from old snapshot\n", k)
			failures++
		}
	}
	return b.String(), failures
}
