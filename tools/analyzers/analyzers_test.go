package analyzers

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSrc typechecks one fixture file as package path and runs the
// determinism rules over it. Std-lib imports resolve from GOROOT source.
func checkSrc(t *testing.T, path, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Check(fset, []*ast.File{f}, pkg, info)
}

const gatedPath = "github.com/agilla-go/agilla/internal/core"

// wantDiags asserts the diagnostics' analyzers, in order.
func wantDiags(t *testing.T, diags []Diagnostic, analyzers ...string) {
	t.Helper()
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer)
	}
	if strings.Join(got, ",") != strings.Join(analyzers, ",") {
		t.Errorf("diagnostics = %v, want analyzers %v", diags, analyzers)
	}
}

func TestWalltime(t *testing.T) {
	diags := checkSrc(t, gatedPath, `
package core

import "time"

func bad() time.Time { return time.Now() }

func alsoBad() {
	_ = time.Since(time.Time{})
	t := time.NewTimer(time.Second)
	_ = t
}

// Pure duration arithmetic and formatting are fine.
func good(d time.Duration) string { return (3 * d).String() }
`)
	wantDiags(t, diags, "walltime", "walltime", "walltime")
	if !strings.Contains(diags[0].Message, "time.Now") {
		t.Errorf("message = %q, want time.Now named", diags[0].Message)
	}
}

func TestSimrand(t *testing.T) {
	diags := checkSrc(t, gatedPath, `
package core

import "math/rand"

func bad() int { return rand.Intn(10) }

// A private source is deterministic given its seed: this is exactly the
// sim.Stream pattern, so constructing and using one is allowed.
func good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
`)
	wantDiags(t, diags, "simrand")
	if !strings.Contains(diags[0].Message, "rand.Intn") {
		t.Errorf("message = %q, want rand.Intn named", diags[0].Message)
	}
}

func TestMaprange(t *testing.T) {
	diags := checkSrc(t, gatedPath, `
package core

func bad(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func good(s []string) int {
	n := 0
	for range s {
		n++
	}
	return n
}
`)
	wantDiags(t, diags, "maprange")
}

func TestGospawn(t *testing.T) {
	diags := checkSrc(t, gatedPath, `
package core

func bad(f func()) { go f() }

func good(f func()) { f() }
`)
	wantDiags(t, diags, "gospawn")
}

func TestLockorder(t *testing.T) {
	diags := checkSrc(t, gatedPath, `
package core

import "sync"

type shard struct{ mu sync.Mutex }

type agentTracker struct{ mu sync.Mutex }

// Tracker-then-shard inverts the documented order.
func bad(tr *agentTracker, sh *shard) {
	tr.mu.Lock()
	sh.mu.Lock()
	sh.mu.Unlock()
	tr.mu.Unlock()
}

// Shard-then-tracker is the documented order.
func good(tr *agentTracker, sh *shard) {
	sh.mu.Lock()
	tr.mu.Lock()
	tr.mu.Unlock()
	sh.mu.Unlock()
}

// Sequential (non-nested) acquisitions are fine in either order.
func alsoGood(tr *agentTracker, sh *shard) {
	tr.mu.Lock()
	tr.mu.Unlock()
	sh.mu.Lock()
	sh.mu.Unlock()
}
`)
	wantDiags(t, diags, "lockorder")
	if !strings.Contains(diags[0].Message, "shard") || !strings.Contains(diags[0].Message, "agentTracker") {
		t.Errorf("message = %q, want both lock classes named", diags[0].Message)
	}
}

func TestSuppression(t *testing.T) {
	diags := checkSrc(t, gatedPath, `
package core

// A justified suppression on the preceding line silences the finding.
func suppressedAbove(m map[int]int) {
	//lint:maprange the body only counts entries, which is order-free
	for range m {
	}
}

// Same-line suppressions work too.
func suppressedInline(m map[int]int) {
	for range m { //lint:maprange counting is order-free
	}
}

// A bare suppression suppresses nothing and is itself reported.
func bare(m map[int]int) {
	//lint:maprange
	for range m {
	}
}

// A justification for one analyzer does not silence another.
func wrongName(f func()) {
	//lint:maprange not the right rule
	go f()
}
`)
	// Sorted by position: the bare //lint: comment itself, the map range
	// it failed to suppress, then the go statement the wrong-name
	// suppression failed to cover.
	wantDiags(t, diags, "maprange", "maprange", "gospawn")
	if !strings.Contains(diags[0].Message, "justification") {
		t.Errorf("bare suppression message = %q, want justification demand", diags[0].Message)
	}
}

func TestGate(t *testing.T) {
	src := `
package outside

import "time"

func fine() time.Time { return time.Now() }
`
	if diags := checkSrc(t, "github.com/agilla-go/agilla/internal/experiments", src); len(diags) != 0 {
		t.Errorf("ungated package produced diagnostics: %v", diags)
	}
	for _, path := range []string{
		"github.com/agilla-go/agilla/internal/core",
		"github.com/agilla-go/agilla/internal/sim",
		"github.com/agilla-go/agilla/internal/replica",
		"github.com/agilla-go/agilla/internal/radio",
	} {
		if !Gated(path) {
			t.Errorf("Gated(%q) = false, want true", path)
		}
	}
	if Gated("github.com/agilla-go/agilla/internal/corelike") {
		t.Error("prefix match must respect path boundaries")
	}
}
