package analyzers

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoVetProtocol exercises the unitchecker implementation against the
// real cmd/go: it builds agilla-lint, then runs `go vet -vettool` over a
// scratch module that shares this module's path (so the gate fires) and
// contains one clean and one violating kernel file. This is the only
// test that proves the -V=full / -flags / unit.cfg handshake works.
func TestGoVetProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and shells out to go vet")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("no go tool on PATH: %v", err)
	}
	root := repoRoot(t)
	tmp := t.TempDir()

	lint := filepath.Join(tmp, "agilla-lint")
	build := exec.Command(goTool, "build", "-o", lint, "./tools/analyzers/cmd/agilla-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building agilla-lint: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "mod")
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module github.com/agilla-go/agilla\n\ngo 1.22\n")
	write("internal/core/bad.go", `package core

import "time"

// Stamp leaks the wall clock into kernel code.
func Stamp() time.Time { return time.Now() }
`)
	write("internal/core/ok.go", `package core

func sum(m map[int]int) int {
	n := 0
	//lint:maprange the sum is commutative
	for _, v := range m {
		n += v
	}
	return n
}
`)
	write("pkg/outside.go", `package pkg

import "time"

// Outside the gate: wall clocks are fine here.
func Stamp() time.Time { return time.Now() }
`)

	vet := func(pkg string) (string, error) {
		cmd := exec.Command(goTool, "vet", "-vettool="+lint, pkg)
		cmd.Dir = mod
		// An isolated GOFLAGS keeps any user vet config out of the run.
		cmd.Env = append(os.Environ(), "GOFLAGS=")
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := vet("./internal/core")
	if err == nil {
		t.Fatalf("go vet on the violating package succeeded; output:\n%s", out)
	}
	if !strings.Contains(out, "walltime") || !strings.Contains(out, "time.Now") {
		t.Errorf("vet output missing the walltime finding:\n%s", out)
	}
	if strings.Contains(out, "maprange") {
		t.Errorf("vet output contains a finding the //lint: comment should suppress:\n%s", out)
	}

	if out, err := vet("./pkg"); err != nil {
		t.Errorf("go vet on an ungated package failed: %v\n%s", err, out)
	}
}
