// Package analyzers implements the repository's determinism linters: go
// vet-compatible static analysis passes that keep wall clocks, global
// randomness, map iteration, ad-hoc goroutines, and lock-order
// inversions out of the simulation kernel.
//
// The whole point of this codebase is that a deployment's behavior is a
// pure function of its seed — the same seed replays the same run event
// for event under both the sequential and the sharded parallel executor.
// That property is easy to break with one innocuous line: a time.Now in
// a timeout path, a package-level rand.Intn, a `for k := range m` whose
// order leaks into an event timestamp. These passes make such lines a
// build-time error for the packages executed inside the kernel
// (GatedPrefixes); host-side code, tools, and tests are not gated.
//
// The passes run through `go vet -vettool=$(which agilla-lint)` — the
// cmd/agilla-lint binary speaks vet's unitchecker protocol — and through
// the in-process Check entry point used by the package's own tests.
//
// # Suppressing a finding
//
// A finding that is wrong or deliberate can be suppressed with a
// justification comment on the same line or the line directly above:
//
//	//lint:maprange keys are drained into a slice and sorted below
//	for loc, n := range d.nodes {
//
// The justification is mandatory: a bare //lint:<analyzer> comment is
// itself reported, so every suppression documents why the flagged code
// is deterministic after all.
//
// # Adding an analyzer
//
// Write a rule file defining an *Analyzer whose Run walks the files of a
// type-checked package via Pass and calls Pass.Reportf for each finding,
// then append it to the slice in All. The driver, the suppression
// machinery, the gate, and the tests pick it up from there; add a
// fixture in analyzers_test.go exercising both a hit and a clean use.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GatedPrefixes lists the import-path prefixes the determinism rules
// apply to: the deterministic simulation kernel and the subsystems that
// execute inside it. Code outside these packages (the public API, CLI,
// experiments, tests) may use wall clocks and global randomness freely.
var GatedPrefixes = []string{
	"github.com/agilla-go/agilla/internal/core",
	"github.com/agilla-go/agilla/internal/sim",
	"github.com/agilla-go/agilla/internal/replica",
	"github.com/agilla-go/agilla/internal/radio",
}

// Gated reports whether the determinism rules apply to a package.
func Gated(importPath string) bool {
	for _, p := range GatedPrefixes {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}

// Analyzer is one determinism rule.
type Analyzer struct {
	// Name is the rule's identifier, used in diagnostics and //lint:
	// suppression comments.
	Name string
	// Doc is a one-paragraph description of what the rule enforces and
	// why.
	Doc string
	// Run walks one type-checked package and reports findings through
	// the pass.
	Run func(*Pass)
}

// All returns every determinism rule, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{walltime, simrand, maprange, gospawn, lockorder}
}

// Pass carries one type-checked package through an analyzer's Run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	name  string
	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Check runs every determinism rule over one type-checked package and
// returns the findings that survive //lint: suppression (plus findings
// for suppressions lacking a justification), sorted by position. It
// returns nil for packages outside the gate.
func Check(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	if !Gated(pkg.Path()) {
		return nil
	}
	var diags []Diagnostic
	for _, a := range All() {
		a.Run(&Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, name: a.Name, diags: &diags})
	}
	diags = applySuppressions(fset, files, diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

// suppression is one parsed //lint:<analyzer> comment.
type suppression struct {
	analyzer  string
	justified bool
	pos       token.Pos
	file      string
	line      int
}

// applySuppressions drops findings covered by a justified //lint:
// comment on the finding's line or the line directly above, and adds a
// finding for every bare suppression, so unjustified silencing cannot
// pass the linters.
func applySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	var sups []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				name, just, _ := strings.Cut(rest, " ")
				p := fset.Position(c.Pos())
				sups = append(sups, suppression{
					analyzer:  name,
					justified: strings.TrimSpace(just) != "",
					pos:       c.Pos(),
					file:      p.Filename,
					line:      p.Line,
				})
			}
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		suppressed := false
		for _, s := range sups {
			if s.justified && s.analyzer == d.Analyzer && s.file == p.Filename &&
				(s.line == p.Line || s.line == p.Line-1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, s := range sups {
		if !s.justified {
			kept = append(kept, Diagnostic{
				Analyzer: s.analyzer,
				Pos:      s.pos,
				Message:  fmt.Sprintf("//lint:%s suppression needs a justification on the same comment", s.analyzer),
			})
		}
	}
	return kept
}
