package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// callee resolves the *types.Func a call invokes, or nil for calls the
// rules don't care about (function values, conversions, builtins).
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	}
	return nil
}

// fromPkg reports whether f is a function from the package with the
// given import path.
func fromPkg(f *types.Func, path string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == path
}

// wallClockFuncs are the time-package entry points that read the host's
// wall clock or start host timers.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// walltime forbids wall-clock reads inside the kernel. Virtual time is
// the only clock a deterministic simulation may observe: two runs of the
// same seed must see identical timestamps, and a parallel run must see
// the same ones as a sequential run.
var walltime = &Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock time in kernel code; all time must derive " +
		"from the simulation clock (sim.Now / Ctx timestamps)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := callee(p.Info, call); fromPkg(fn, "time") && wallClockFuncs[fn.Name()] {
					p.Reportf(call.Pos(),
						"time.%s reads the wall clock; kernel code must use the simulation clock", fn.Name())
				}
				return true
			})
		}
	},
}

// simrand forbids the global math/rand source inside the kernel. The
// global source is process-wide mutable state: any draw perturbs every
// later draw, so an unrelated goroutine (or test ordering) changes the
// kernel's random sequence. Kernel randomness must come from the
// per-context streams sim.Stream derives from the seed; constructing a
// private source (rand.New, rand.NewSource) and calling methods on a
// *rand.Rand are therefore allowed.
var simrand = &Analyzer{
	Name: "simrand",
	Doc: "forbid the global math/rand source in kernel code; draw from " +
		"a per-context seeded stream (sim.Stream) instead",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := callee(p.Info, call)
				if !fromPkg(fn, "math/rand") && !fromPkg(fn, "math/rand/v2") {
					return true
				}
				// Methods have a receiver: those run on an explicit
				// source and are deterministic given the seed.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				if fn.Name() == "New" || fn.Name() == "NewSource" {
					return true
				}
				p.Reportf(call.Pos(),
					"rand.%s draws from the global math/rand source, which is shared process state; use a sim.Stream", fn.Name())
				return true
			})
		}
	},
}

// maprange flags ranging over maps in kernel code. Go randomizes map
// iteration order per run, so any map range whose body's effects are
// order-sensitive (event scheduling, accumulation into floats, slice
// append) silently breaks replay. Flagged sites either sort and get a
// justified suppression, or switch to an ordered container.
var maprange = &Analyzer{
	Name: "maprange",
	Doc: "flag map iteration in kernel code; iteration order is " +
		"randomized per process, so order-sensitive bodies break determinism",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := p.Info.TypeOf(rs.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						p.Reportf(rs.For,
							"map iteration order is nondeterministic; sort the keys first or use an ordered container")
					}
				}
				return true
			})
		}
	},
}

// gospawn flags go statements in kernel code. Scheduling belongs to the
// executor: the sharded parallel kernel reproduces the sequential event
// schedule exactly because it alone decides what runs concurrently. An
// ad-hoc goroutine racing the executor reintroduces host-scheduler
// nondeterminism.
var gospawn = &Analyzer{
	Name: "gospawn",
	Doc: "flag goroutine spawns in kernel code; concurrency belongs to " +
		"the sharded executor's worker pool, not ad-hoc go statements",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					p.Reportf(gs.Go,
						"goroutine spawned outside the executor's worker pool; kernel concurrency must go through the sharded executor")
				}
				return true
			})
		}
	},
}

// lockRank orders the kernel's documented lock classes: a shard's
// mailbox mutex is always acquired before the deployment-wide tracker /
// context-table mutex. Unknown mutexes rank -1 and are not checked.
func lockRank(typeName string) int {
	name := strings.ToLower(typeName)
	switch {
	case strings.Contains(name, "shard"):
		return 0
	case strings.Contains(name, "tracker"), strings.Contains(name, "ctxtable"):
		return 1
	}
	return -1
}

// lockEvent is one Lock/Unlock call in a function body, in source order.
type lockEvent struct {
	pos    int // token.Pos as int, for sorting
	node   ast.Node
	class  string // owning type's name, e.g. "shard", "agentTracker"
	unlock bool
}

// lockorder flags nested mutex acquisitions that invert the documented
// shard→tracker order. Shard workers hold their shard's mutex while
// reporting into the deployment-wide tracker; a path taking the tracker
// mutex first and a shard mutex second can deadlock against them. The
// check is a per-function linear scan: it sees `a.mu.Lock(); b.mu.Lock()`
// shapes, not acquisitions hidden behind calls — a linter for the known
// hazard, not a whole-program deadlock prover.
var lockorder = &Analyzer{
	Name: "lockorder",
	Doc: "flag nested mutex acquisitions inverting the documented " +
		"shard→tracker lock order",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkLockOrder(p, fd.Body)
			}
		}
	},
}

func checkLockOrder(p *Pass, body *ast.BlockStmt) {
	var events []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		isLock := name == "Lock" || name == "RLock"
		isUnlock := name == "Unlock" || name == "RUnlock"
		if !isLock && !isUnlock {
			return true
		}
		if !isSyncMutex(p.Info.TypeOf(sel.X)) {
			return true
		}
		class := mutexOwner(p.Info, sel.X)
		if class == "" {
			return true
		}
		events = append(events, lockEvent{pos: int(call.Pos()), node: call, class: class, unlock: isUnlock})
		return true
	})
	// ast.Inspect visits in source order within a statement list, but
	// sort anyway so nested expressions cannot reorder events.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j-1].pos > events[j].pos; j-- {
			events[j-1], events[j] = events[j], events[j-1]
		}
	}
	var held []string
	for _, e := range events {
		if e.unlock {
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == e.class {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
			continue
		}
		for _, h := range held {
			hr, er := lockRank(h), lockRank(e.class)
			if hr >= 0 && er >= 0 && er < hr {
				p.Reportf(e.node.Pos(),
					"acquires %s's mutex while holding %s's: inverts the documented shard→tracker lock order", e.class, h)
			}
		}
		held = append(held, e.class)
	}
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// mutexOwner names the type holding the mutex field: for `sh.mu` it is
// sh's type name, so different instances of one struct share a lock
// class. Bare identifiers (a local or package-level mutex) use the
// identifier name.
func mutexOwner(info *types.Info, x ast.Expr) string {
	switch e := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		t := info.TypeOf(e.X)
		if t == nil {
			return ""
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name()
		}
		return ""
	case *ast.Ident:
		return e.Name
	}
	return ""
}
