package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const modulePath = "github.com/agilla-go/agilla"

// repoImporter typechecks this repository's packages from source,
// recursively, so the determinism rules can run over the real kernel in
// `go test` without the export data `go vet` has. Std-lib imports
// resolve from GOROOT source; module-internal imports map onto the repo
// tree.
type repoImporter struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*types.Package
}

func newRepoImporter(fset *token.FileSet, root string) *repoImporter {
	return &repoImporter{
		fset: fset,
		root: root,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package),
	}
}

func (ri *repoImporter) Import(path string) (*types.Package, error) {
	pkg, _, err := ri.load(path, nil)
	return pkg, err
}

// load typechecks one package, returning its files and the Info when
// the caller supplies one (the package under analysis does; transitive
// dependencies don't need it).
func (ri *repoImporter) load(path string, info *types.Info) (*types.Package, []*ast.File, error) {
	if pkg, ok := ri.pkgs[path]; ok && info == nil {
		return pkg, nil, nil
	}
	if !strings.HasPrefix(path, modulePath) {
		pkg, err := ri.std.Import(path)
		return pkg, nil, err
	}
	dir := filepath.Join(ri.root, filepath.FromSlash(strings.TrimPrefix(path, modulePath)))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ri.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: ri}
	pkg, err := conf.Check(path, ri.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typechecking %s: %w", path, err)
	}
	ri.pkgs[path] = pkg
	return pkg, files, nil
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test's working directory")
		}
		dir = parent
	}
}

// The gated kernel packages must be clean under the determinism rules:
// every remaining flagged site carries a justified //lint: suppression.
// This is the same check CI runs through `go vet -vettool`, kept inside
// `go test` so a plain test run catches regressions too.
func TestKernelPackagesClean(t *testing.T) {
	root := repoRoot(t)
	fset := token.NewFileSet()
	ri := newRepoImporter(fset, root)
	for _, path := range GatedPrefixes {
		path := path
		t.Run(strings.TrimPrefix(path, modulePath+"/internal/"), func(t *testing.T) {
			info := &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
			}
			pkg, files, err := ri.load(path, info)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range Check(fset, files, pkg, info) {
				t.Errorf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
			}
		})
	}
}
