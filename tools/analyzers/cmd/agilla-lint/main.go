// Command agilla-lint runs the repository's determinism linters as a
// `go vet` tool:
//
//	go build -o /tmp/agilla-lint ./tools/analyzers/cmd/agilla-lint
//	go vet -vettool=/tmp/agilla-lint ./...
//
// The rules fire only inside the deterministic kernel packages
// (internal/core, internal/sim, internal/replica, internal/radio); see
// the analyzers package for the rule list and the //lint: suppression
// syntax.
package main

import "github.com/agilla-go/agilla/tools/analyzers"

func main() { analyzers.Main() }
