package analyzers

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool` side of the linters: the
// unitchecker protocol cmd/go speaks to analysis tools. The protocol is
// small but exact, and the usual implementation lives in
// golang.org/x/tools — a dependency this repository does not take — so
// it is reimplemented here on the standard library:
//
//   - `tool -V=full` prints a version line whose buildID term is a
//     content hash of the tool binary; cmd/go keys its analysis cache on
//     it, so a rebuilt linter invalidates cached results.
//   - `tool -flags` prints a JSON description of the tool's flags, from
//     which cmd/go decides what vet flags it may forward.
//   - `tool <unit>.cfg` analyzes one compilation unit. The cfg names the
//     package's files, its import map, and the export-data file of every
//     dependency — the tool typechecks against export data, never
//     sources. The tool must write cfg.VetxOutput (its serialized facts;
//     empty here, the determinism rules are local) even when it finds
//     nothing, exiting 0 on success, 2 with file:line:col diagnostics on
//     stderr when findings exist.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GOOS, GOARCH              string
}

// Main is the entry point for cmd/agilla-lint. It never returns.
func Main() {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(args) == 1 && args[0] == "-V=full" {
		// cmd/go caches analysis results keyed on this line; hashing the
		// binary makes any rebuild a cache miss.
		exe, err := os.Executable()
		if err != nil {
			fail(err)
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, sha256.Sum256(data))
		os.Exit(0)
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No forwardable flags: the rules are not individually
		// switchable from the vet command line.
		fmt.Println("[]")
		os.Exit(0)
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fail(fmt.Errorf("usage: %s [-V=full | -flags | unit.cfg]\n"+
			"run via: go vet -vettool=$(command -v %s) ./...", progname, progname))
	}
	diags, err := checkUnit(args[0])
	if err != nil {
		fail(err)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
	os.Exit(0)
}

// checkUnit analyzes one compilation unit per its cfg file, returning
// rendered "file:line:col: message" diagnostics.
func checkUnit(cfgPath string) ([]string, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// The facts file must exist for cmd/go whatever happens next; the
	// determinism rules keep no cross-package facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	// VetxOnly units are dependencies analyzed solely for facts we don't
	// produce, and packages outside the gate need no typechecking at all.
	if cfg.VetxOnly || !Gated(cfg.ImportPath) {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a canonical package path; cfg.PackageFile maps it to
		// the export data written by the compiler for this build.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tcfg := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return compilerImporter.Import(path)
		}),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, cfg.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}

	var out []string
	for _, d := range Check(fset, files, pkg, info) {
		pos := fset.Position(d.Pos)
		// The gate covers shipped kernel code only. Test files ride along
		// in cmd/go's test compilation units, but tests may iterate maps
		// and read clocks freely — their assertions don't feed the
		// deterministic schedule.
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		out = append(out, fmt.Sprintf("%s: %s: %s", pos, d.Analyzer, d.Message))
	}
	return out, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
