package agilla_test

// Tests for the base-station RemoteClient: wire-op round trips, deadline
// derivation from NodeConfig, the network-wide Query, and the at-most-once
// responder contract under reply loss.

import (
	"errors"
	"testing"
	"time"

	"github.com/agilla-go/agilla"
	"github.com/agilla-go/agilla/internal/radio"
)

func reliableGrid(t *testing.T, w, h int, opts ...agilla.Option) *agilla.Network {
	t.Helper()
	nw, err := agilla.New(append([]agilla.Option{
		agilla.WithTopology(agilla.Grid(w, h)),
		agilla.WithReliableRadio(),
		agilla.WithSeed(1),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestRemoteClientRoundTrips(t *testing.T) {
	nw := reliableGrid(t, 3, 1)
	rc := nw.Remote()
	dest := agilla.Loc(3, 1)
	tmpl := agilla.Tmpl(agilla.Int(7), agilla.TypeV(2))

	// Rout inserts over the air (two hops).
	if err := rc.Rout(dest, agilla.T(agilla.Int(7), agilla.Str("ab"))); err != nil {
		t.Fatalf("Rout: %v", err)
	}
	if got := nw.Space(dest).Count(tmpl); got != 1 {
		t.Fatalf("after Rout the destination holds %d matches, want 1", got)
	}

	// Rrdp copies without removing.
	tup, ok, err := rc.Rrdp(dest, tmpl)
	if err != nil || !ok {
		t.Fatalf("Rrdp = %v, %v, %v", tup, ok, err)
	}
	if tup.Fields[1].S != "ab" {
		t.Fatalf("Rrdp tuple = %v", tup)
	}
	if got := nw.Space(dest).Count(tmpl); got != 1 {
		t.Fatalf("Rrdp removed the tuple (count %d)", got)
	}

	// Rinp removes and returns.
	tup, ok, err = rc.Rinp(dest, tmpl)
	if err != nil || !ok {
		t.Fatalf("Rinp = %v, %v, %v", tup, ok, err)
	}
	if got := nw.Space(dest).Count(tmpl); got != 0 {
		t.Fatalf("Rinp left %d matches behind", got)
	}

	// A second Rinp executes fine but finds nothing: ok=false, nil error.
	if _, ok, err := rc.Rinp(dest, tmpl); ok || err != nil {
		t.Fatalf("no-match Rinp = %v, %v; want false, nil", ok, err)
	}
}

func TestRemoteClientTimeoutDerivedFromConfig(t *testing.T) {
	// Shrink the remote-op timers; the client's deadline must follow.
	nw := reliableGrid(t, 2, 1, agilla.WithNodeConfig(agilla.NodeConfig{
		RemoteTimeout: 200 * time.Millisecond,
		RemoteRetries: -1, // no retransmissions
	}))
	nw.Node(agilla.Loc(2, 1)).Stop() // requests vanish
	rc := nw.Remote()

	ops := []func() error{
		func() error { return rc.Rout(agilla.Loc(2, 1), agilla.T(agilla.Int(1))) },
		func() error { _, _, err := rc.Rinp(agilla.Loc(2, 1), agilla.Tmpl(agilla.Int(1))); return err },
		func() error { _, _, err := rc.Rrdp(agilla.Loc(2, 1), agilla.Tmpl(agilla.Int(1))); return err },
	}
	for i, op := range ops {
		before := nw.Now()
		err := op()
		if !errors.Is(err, agilla.ErrRemoteTimeout) {
			t.Fatalf("op %d: err = %v, want ErrRemoteTimeout", i, err)
		}
		// With retries explicitly disabled the operation resolves at its
		// single 200 ms timeout; a looser bound would hide the budget
		// re-inflating disabled retries back to the default.
		if elapsed := nw.Now() - before; elapsed > 500*time.Millisecond {
			t.Fatalf("op %d took %v of virtual time; deadline not derived from config", i, elapsed)
		}
	}
}

func TestRemoteClientUnknownNode(t *testing.T) {
	nw := reliableGrid(t, 2, 1)
	if err := nw.Remote().Rout(agilla.Loc(9, 9), agilla.T(agilla.Int(1))); err == nil {
		t.Fatal("Rout to a location with no node must fail")
	}
}

func TestRemoteClientQueryPartialMatches(t *testing.T) {
	nw := reliableGrid(t, 2, 2)
	beacon := agilla.Tmpl(agilla.Str("hkr"))

	// Beacons on three of four motes; one of those motes then dies, so
	// the query sees matches, no-matches, and a timeout in one sweep.
	for _, loc := range []agilla.Location{agilla.Loc(1, 1), agilla.Loc(2, 1), agilla.Loc(2, 2)} {
		if err := nw.Space(loc).Out(agilla.T(agilla.Str("hkr"))); err != nil {
			t.Fatal(err)
		}
	}
	nw.Node(agilla.Loc(2, 2)).Stop()

	matches, err := nw.Remote().Query(beacon)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("Query found %d matches, want 2: %v", len(matches), matches)
	}
	// Results come back in deployment order, one per matching mote.
	if matches[0].Node != agilla.Loc(1, 1) || matches[1].Node != agilla.Loc(2, 1) {
		t.Fatalf("Query order = %v, %v", matches[0].Node, matches[1].Node)
	}
	for _, m := range matches {
		if m.Tuple.Fields[0].S != "hkr" {
			t.Fatalf("match tuple = %v", m.Tuple)
		}
	}

	// A template nothing matches yields an empty result, not an error.
	none, err := nw.Remote().Query(agilla.Tmpl(agilla.Str("zzz")))
	if err != nil || len(none) != 0 {
		t.Fatalf("empty Query = %v, %v", none, err)
	}
}

// TestRinpExactlyOnceUnderReplyLoss is the end-to-end acceptance check
// for the responder-side duplicate-request fix: when the reply to a
// base-station Rinp is lost and the request is retransmitted, exactly
// one tuple is removed at the destination.
func TestRinpExactlyOnceUnderReplyLoss(t *testing.T) {
	nw := reliableGrid(t, 2, 1)
	dest := agilla.Loc(2, 1)
	tmpl := agilla.Tmpl(agilla.Int(33))

	// Two identical tuples: a re-executed rinp would destroy both.
	for i := 0; i < 2; i++ {
		if err := nw.Space(dest).Out(agilla.T(agilla.Int(33))); err != nil {
			t.Fatal(err)
		}
	}

	dropped := 0
	agilla.DeploymentForTest(nw).Medium.Drop = func(f radio.Frame, _ agilla.Location) bool {
		if f.Kind == radio.KindRemoteTSR && dropped == 0 {
			dropped++
			return true
		}
		return false
	}

	tup, ok, err := nw.Remote().Rinp(dest, tmpl)
	if err != nil || !ok {
		t.Fatalf("Rinp under reply loss = %v, %v, %v", tup, ok, err)
	}
	if tup.Fields[0].A != 33 {
		t.Fatalf("Rinp returned %v", tup)
	}
	if dropped != 1 {
		t.Fatalf("dropped %d replies, want 1 (the scenario did not exercise retransmission)", dropped)
	}
	if got := nw.Space(dest).Count(tmpl); got != 1 {
		t.Fatalf("destination holds %d copies, want exactly 1 removed", 2-got)
	}
}

// TestRemoteReadShim keeps the deprecated Network.RemoteRead delegating
// to the client until it is removed.
func TestRemoteReadShim(t *testing.T) {
	nw := reliableGrid(t, 2, 1)
	if err := nw.Space(agilla.Loc(2, 1)).Out(agilla.T(agilla.Int(9))); err != nil {
		t.Fatal(err)
	}
	tup, ok, err := nw.RemoteRead(agilla.Loc(2, 1), agilla.Tmpl(agilla.Int(9)))
	if err != nil || !ok || tup.Fields[0].A != 9 {
		t.Fatalf("RemoteRead shim = %v, %v, %v", tup, ok, err)
	}
}
