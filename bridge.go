package agilla

// The process-sharded deployment bridge: phase 1 of the real-wire
// distributed runtime. Two (or more) processes each build the SAME
// topology with the SAME seed, declare which locations they own and which
// a peer serves, and the middleware runs across them — migration,
// remote tuple space operations, and replication gossip cross the wire
// through the frame envelope (internal/wire) over a pluggable transport
// (internal/transport: in-memory Loopback, UDP datagrams, or a TCP
// stream). The wire transports coalesce each peer's outbound frames into
// wire.Batch containers, sealed at every pump quantum boundary, so
// envelope and syscall costs amortize across border traffic.
//
// The split is by ownership, not by protocol: each process prunes the
// shared layout to its own motes and attaches transparent border ports at
// every peer-owned coordinate. The radio model (loss, airtime, jitter)
// runs once per border hop on the owner of the sending node; the peer
// injects the surviving frame delay-free. See internal/transport for the
// mechanism and the README's "Distributed runtime" section for the
// topology picture.

import (
	"fmt"
	"time"

	"github.com/agilla-go/agilla/internal/topology"
	"github.com/agilla-go/agilla/internal/transport"
)

// BridgePeer names one peer process and the locations it owns. The
// location list must cover everything the peer serves that this process's
// nodes may address — its motes and, if the peer launches agents or
// remote operations of its own, its base station location.
type BridgePeer struct {
	// Addr is the peer's transport address: "udp:host:port" for
	// datagram sockets, "tcp:host:port" for a lossless stream link,
	// "loop:name" for the in-memory loopback transport.
	Addr string
	// Locations are the layout coordinates the peer owns.
	Locations []Location
}

// BridgeConfig configures WithTransportBridge.
type BridgeConfig struct {
	// Listen is this process's transport address, same schemes as
	// BridgePeer.Addr.
	Listen string
	// Peers maps the rest of the field to the processes serving it.
	Peers []BridgePeer
	// BaseLoc relocates this process's base station. Every process runs
	// its own base; when the default (0,0) is owned by a peer — every
	// process but the primary — pick a spot outside the shared layout,
	// far enough away that greedy geographic routing never detours
	// through it (for example Loc(-100, -100)).
	BaseLoc *Location
	// Quantum is the virtual-time step between border pumps while a
	// bridged network runs (default 5ms). Smaller quanta lower the
	// added cross-border latency; larger ones lower pump overhead.
	Quantum time.Duration
}

// WithTransportBridge runs this process as one spatial shard of a larger
// deployment. The topology passed to New must be the full shared field —
// identical, seed and all, in every participating process; the option
// prunes it to the locations no peer claims and bridges the rest over the
// configured transport.
//
// A bridged network trades determinism for scale: virtual time advances
// in quanta paced against the wall clock (the peers execute concurrently
// in real time), and wire delivery order is not reproducible. The
// single-process executor remains the reference oracle; the conformance
// suite in bridge_conformance_test.go holds the two accountable to each
// other.
func WithTransportBridge(cfg BridgeConfig) Option {
	return func(s *settings) { cp := cfg; s.bridge = &cp }
}

// bridgeQuantumDefault is the pump step for bridged runs.
const bridgeQuantumDefault = 5 * time.Millisecond

// planBridge prunes the realized layout to this process's share and
// resolves the peer map. Called from New when WithTransportBridge is set.
func planBridge(layout topology.Layout, cfg *BridgeConfig) (topology.Layout, map[Location]transport.Addr, Location, error) {
	baseLoc := topology.Loc(0, 0)
	if cfg.BaseLoc != nil {
		baseLoc = *cfg.BaseLoc
	}
	peers := make(map[Location]transport.Addr)
	for _, p := range cfg.Peers {
		if p.Addr == "" {
			return layout, nil, baseLoc, fmt.Errorf("agilla: bridge peer with empty address")
		}
		for _, l := range p.Locations {
			if prev, ok := peers[l]; ok && prev != transport.Addr(p.Addr) {
				return layout, nil, baseLoc, fmt.Errorf("agilla: location %v claimed by two peers", l)
			}
			peers[l] = transport.Addr(p.Addr)
		}
	}
	if _, ok := peers[baseLoc]; ok {
		return layout, nil, baseLoc, fmt.Errorf(
			"agilla: base location %v is owned by a peer; set BridgeConfig.BaseLoc for this process", baseLoc)
	}
	local := make([]Location, 0, len(layout.Nodes))
	for _, l := range layout.Nodes {
		if _, remote := peers[l]; !remote {
			local = append(local, l)
		}
	}
	if len(local) == 0 {
		return layout, nil, baseLoc, fmt.Errorf("agilla: bridge peers own every node; nothing left to run here")
	}
	// Prune the node set but keep the full Links topology: geometric
	// connectivity (grids, disks) is derived from coordinates, so border
	// links span the split unchanged.
	layout.Nodes = local
	owned := false
	for _, l := range local {
		if l == layout.Gateway {
			owned = true
			break
		}
	}
	if !owned {
		// The shared layout's gateway lives in a peer process; bridge this
		// base to the local mote nearest it.
		layout.Gateway = local[topology.ClosestTo(baseLoc, local)]
	}
	layout.Name = layout.Name + "/bridged"
	return layout, peers, baseLoc, nil
}

// Bridge is the public handle on a bridged network's border: pump it,
// read its counters, close it. Obtain from Network.Bridge.
type Bridge struct {
	nw *Network
}

// BridgeStats counts border traffic; see Bridge.Stats.
type BridgeStats = transport.BridgeStats

// TransportPeerStats counts per-peer transport traffic; see
// Bridge.TransportStats.
type TransportPeerStats = transport.PeerStats

// Bridge returns the network's transport bridge handle, or nil when the
// network was built without WithTransportBridge.
func (nw *Network) Bridge() *Bridge {
	if nw.bridge == nil {
		return nil
	}
	return &Bridge{nw: nw}
}

// Pump drains frames received from peers into the local radio medium and
// returns how many were injected. Run, RunUntil, WarmUp, and the
// RemoteClient already pump every quantum; call Pump directly only when
// driving the simulation through lower-level entry points.
func (b *Bridge) Pump() int { return b.nw.bridge.Pump() }

// Stats snapshots the border counters.
func (b *Bridge) Stats() BridgeStats { return b.nw.bridge.Stats() }

// TransportStats snapshots the per-peer transport counters, keyed by
// scheme-prefixed peer address.
func (b *Bridge) TransportStats() map[string]TransportPeerStats {
	in := b.nw.bridge.Transport().Stats()
	out := make(map[string]TransportPeerStats, len(in))
	for a, s := range in {
		out[string(a)] = s
	}
	return out
}

// LocalAddr returns the transport address this process listens on (with
// the kernel-chosen port resolved when the configured one was 0).
func (b *Bridge) LocalAddr() string { return string(b.nw.bridge.Transport().LocalAddr()) }

// Owns reports whether loc is served by a peer through this bridge.
func (b *Bridge) Owns(loc Location) bool { return b.nw.bridge.Owns(loc) }

// Close detaches the border and closes the transport. The simulation
// keeps running locally; frames to peer-owned locations are dropped once
// the border is down.
func (b *Bridge) Close() error { return b.nw.bridge.Close() }

// bridgeOwns reports whether a peer serves loc.
func (nw *Network) bridgeOwns(loc Location) bool {
	return nw.bridge != nil && nw.bridge.Owns(loc)
}

// stepBridged advances one quantum of virtual time with a border pump on
// either side. It never sleeps — wall pacing is the caller's (or the idle
// hook's) business — which makes it the building block for co-driving
// several in-process networks from one test or benchmark loop.
func (nw *Network) stepBridged(step time.Duration) error {
	nw.bridge.Pump()
	err := nw.d.Sim.Run(nw.d.Sim.Now() + step)
	nw.bridge.Pump()
	return err
}

// runUntilAt advances virtual time until pred holds or the deadline
// passes, reporting whether pred held. On a bridged network the run is
// chopped into quanta with a border pump between each, and the idle hook
// — by default a 1:1 wall-clock sleep, so concurrently running peer
// processes advance their halves in rough lockstep — runs after every
// quantum. Tests and single-process drivers replace the hook to co-drive
// the peer network instead of sleeping.
func (nw *Network) runUntilAt(pred func() bool, deadline time.Duration) (bool, error) {
	if pred == nil {
		pred = func() bool { return false }
	}
	if nw.bridge == nil {
		return nw.d.Sim.RunUntil(pred, deadline)
	}
	for {
		nw.bridge.Pump()
		if pred() {
			return true, nil
		}
		now := nw.d.Sim.Now()
		if now >= deadline {
			return false, nil
		}
		step := nw.quantum
		if step <= 0 {
			step = bridgeQuantumDefault
		}
		if now+step > deadline {
			step = deadline - now
		}
		if _, err := nw.d.Sim.RunUntil(pred, now+step); err != nil {
			return false, err
		}
		if nw.idle != nil {
			nw.idle(step)
		}
	}
}

// defaultBridgeIdle paces a bridged run against the wall clock so peer
// processes get real time to run their halves and answer.
func defaultBridgeIdle(step time.Duration) { time.Sleep(step) }
