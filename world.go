package agilla

// Dynamic worlds: node churn, mobility, and energy. The paper's pitch is
// agents that adapt to a hostile, changing network (§1, §5); this file is
// the host-facing surface for making the network actually hostile — nodes
// die, recover, relocate, and drain batteries while the simulation runs,
// deterministically under both the sequential and the sharded kernel.
//
// Three entry points:
//
//   - Immediate: nw.Kill / nw.Revive / nw.Move between runs.
//   - Scripted: WorldEvent values (KillAt, ReviveAt, MoveAt) passed to
//     nw.Script or Scenario.Faults.
//   - Stochastic: a seeded ChurnProcess on Scenario, expanded into a
//     deterministic kill/revive schedule from the run's seed.

import (
	"fmt"
	"time"

	"github.com/agilla-go/agilla/internal/core"
	"github.com/agilla-go/agilla/internal/sim"
)

// ErrNodeDown reports an operation addressed to — or an agent that died
// with — a node that is down. Test with errors.Is.
var ErrNodeDown = core.ErrNodeDown

// NodeLife is a node's lifecycle state.
type NodeLife = core.LifeState

// Node lifecycle states, as reported by Network.Life.
const (
	NodeUp         = core.NodeUp         // beaconing and executing agents
	NodeDown       = core.NodeDown       // dead: radio off, volatile state lost
	NodeRecovering = core.NodeRecovering // booting after Revive
)

// DownCause says why a node died.
type DownCause = core.DownCause

// Down causes.
const (
	CauseKilled = core.CauseKilled // scripted fault or host API
	CauseEnergy = core.CauseEnergy // battery exhausted
)

// EnergyModel configures per-mote batteries: joule costs per VM
// instruction, radio transmission/reception, and sensor sample, plus a
// continuous idle drain. A mote whose battery empties dies on the spot
// (EnergyExhausted, then NodeDied) and the network routes around it. The
// zero value disables the model; DefaultEnergyModel returns MICA2-
// calibrated costs.
type EnergyModel = core.EnergyModel

// DefaultEnergyModel returns joule costs calibrated to the MICA2 mote the
// paper deployed, with a deliberately small battery so simulated
// scenarios reach exhaustion; raise CapacityJ for long-lived worlds.
func DefaultEnergyModel() EnergyModel { return core.DefaultEnergyModel() }

// WorldEventKind discriminates WorldEvent variants.
type WorldEventKind uint8

// World event kinds.
const (
	WorldKill WorldEventKind = iota + 1
	WorldRevive
	WorldMove
)

func (k WorldEventKind) String() string {
	switch k {
	case WorldKill:
		return "kill"
	case WorldRevive:
		return "revive"
	case WorldMove:
		return "move"
	default:
		return fmt.Sprintf("world(%d)", uint8(k))
	}
}

// WorldEvent is one scheduled world mutation: a node death, recovery, or
// relocation at an absolute virtual time. Build them with KillAt,
// ReviveAt, and MoveAt; apply them with Network.Script or declaratively
// via Scenario.Faults. Locations resolve when the event fires, against
// the world as it then is; an event that resolves to nothing (no node
// there, target occupied, base station addressed) is counted in
// WorldStats.Rejected rather than failing the run.
type WorldEvent struct {
	// At is the absolute virtual time the event fires (Network.Now
	// coordinates: warm-up time counts).
	At time.Duration
	// Kind selects the mutation.
	Kind WorldEventKind
	// Loc is the node addressed: the victim of a kill/revive, the source
	// of a move.
	Loc Location
	// To is the move destination (moves only).
	To Location
}

// KillAt schedules the mote at loc to die at virtual time at: radio off,
// beacons stop, hosted agents die with it (their handles report
// ErrNodeDown), volatile state lost. In-flight frames to it are lost at
// delivery; senders time out and run the §3.2 failure paths.
func KillAt(at time.Duration, loc Location) WorldEvent {
	return WorldEvent{At: at, Kind: WorldKill, Loc: loc}
}

// ReviveAt schedules the dead mote at loc to boot again at virtual time
// at. It comes back BootDelay later with empty spaces, a fresh battery,
// and re-seeded context tuples, and neighbors re-discover it by beacon.
func ReviveAt(at time.Duration, loc Location) WorldEvent {
	return WorldEvent{At: at, Kind: WorldRevive, Loc: loc}
}

// MoveAt schedules the mote at from to relocate to to at virtual time at.
// The mote keeps its agents, tuples, and battery; its address, sensing
// position, and connectivity change instantly (geometric topologies
// re-derive links from the new coordinates; explicit link sets carry
// their edges). In-flight unicast frames to the vacated location are
// lost; broadcasts are still heard.
func MoveAt(at time.Duration, from, to Location) WorldEvent {
	return WorldEvent{At: at, Kind: WorldMove, Loc: from, To: to}
}

func (e WorldEvent) String() string {
	switch e.Kind {
	case WorldMove:
		return fmt.Sprintf("%v at %v: %v -> %v", e.Kind, e.At, e.Loc, e.To)
	default:
		return fmt.Sprintf("%v at %v: %v", e.Kind, e.At, e.Loc)
	}
}

// WorldStats counts world-event outcomes.
type WorldStats = core.WorldStats

// WorldStats returns the world-event counters: applied kills, revives,
// moves, and events that resolved to nothing.
func (nw *Network) WorldStats() WorldStats { return nw.d.WorldStats() }

// Script schedules world events on the running network. Call it between
// runs (or from a Scenario Play hook); events fire at their absolute
// virtual times, in time order, after all ordinary middleware events of
// the same instant — identically under both executors.
func (nw *Network) Script(events ...WorldEvent) {
	for _, e := range events {
		switch e.Kind {
		case WorldKill:
			nw.d.KillAt(e.At, e.Loc)
		case WorldRevive:
			nw.d.ReviveAt(e.At, e.Loc)
		case WorldMove:
			nw.d.MoveAt(e.At, e.Loc, e.To)
		default:
			// A hand-built event with a zero or unknown Kind resolves to
			// nothing; count it rather than dropping it silently.
			nw.d.RejectWorld()
		}
	}
}

// Kill takes the mote at loc down at the next instant. It returns
// ErrNoSuchNode for an empty location; killing the base station or an
// already-down mote is a no-op counted in WorldStats.Rejected.
func (nw *Network) Kill(loc Location) error {
	if nw.d.Node(loc) == nil {
		return fmt.Errorf("%w at %v", ErrNoSuchNode, loc)
	}
	nw.d.KillAt(nw.d.Sim.Now(), loc)
	return nil
}

// Revive boots the dead mote at loc at the next instant.
func (nw *Network) Revive(loc Location) error {
	if nw.d.Node(loc) == nil {
		return fmt.Errorf("%w at %v", ErrNoSuchNode, loc)
	}
	nw.d.ReviveAt(nw.d.Sim.Now(), loc)
	return nil
}

// Move relocates the mote at from to to at the next instant.
func (nw *Network) Move(from, to Location) error {
	if nw.d.Node(from) == nil {
		return fmt.Errorf("%w at %v", ErrNoSuchNode, from)
	}
	nw.d.MoveAt(nw.d.Sim.Now(), from, to)
	return nil
}

// Life reports the lifecycle state of the node at loc; ok is false when
// no node lives there (never has, or moved away).
func (nw *Network) Life(loc Location) (NodeLife, bool) {
	n := nw.d.Node(loc)
	if n == nil {
		return 0, false
	}
	return n.Life(), true
}

// Battery reports the node's energy state in joules; ok is false when no
// node lives at loc or the network has no energy model.
func (nw *Network) Battery(loc Location) (usedJ, capacityJ float64, ok bool) {
	n := nw.d.Node(loc)
	if n == nil {
		return 0, 0, false
	}
	return n.Battery()
}

// ChurnProcess is a seeded stochastic fault model: each selected mote
// alternates exponentially distributed up and down periods, giving the
// memoryless churn of deployment studies. The schedule is expanded from
// the scenario seed before the run starts, so it is fully deterministic
// per seed and identical under both executors.
type ChurnProcess struct {
	// MeanUp and MeanDown are the mean lifetimes of the up and down
	// phases (defaults 30s and 5s).
	MeanUp, MeanDown time.Duration
	// Start and End bound the churn window in absolute virtual time
	// (End 0 = the whole run; Start 0 starts churning immediately —
	// usually set Start past warm-up).
	Start, End time.Duration
	// Nodes restricts churn to these locations (nil: every mote).
	Nodes []Location
}

// saltChurn namespaces churn streams within the seed's stream space.
const saltChurn = 0x6368726e // "chrn"

// expand renders the process into a deterministic kill/revive schedule
// for the given motes. Each mote draws from its own location-keyed
// stream, so one mote's schedule never depends on how many others churn.
func (c ChurnProcess) expand(seed int64, all []Location, horizon time.Duration) []WorldEvent {
	meanUp, meanDown := c.MeanUp, c.MeanDown
	if meanUp <= 0 {
		meanUp = 30 * time.Second
	}
	if meanDown <= 0 {
		meanDown = 5 * time.Second
	}
	end := c.End
	if end <= 0 || end > horizon {
		end = horizon
	}
	nodes := c.Nodes
	if nodes == nil {
		nodes = all
	}
	var out []WorldEvent
	for _, loc := range nodes {
		rng := sim.Stream(seed, saltChurn, uint64(sim.Key2D(loc.X, loc.Y)))
		at := c.Start
		for {
			at += time.Duration(rng.ExpFloat64() * float64(meanUp))
			if at >= end {
				break
			}
			out = append(out, KillAt(at, loc))
			at += time.Duration(rng.ExpFloat64() * float64(meanDown))
			if at >= end {
				break
			}
			out = append(out, ReviveAt(at, loc))
		}
	}
	return out
}
