package agilla

// The bridge conformance suite: the same seeded scenario runs once in a
// single process (the deterministic oracle) and once split across two
// bridged half-networks in this test process, joined by the in-memory
// Loopback transport and co-driven in quantum lockstep. The two runs must
// agree on outcomes — where agents arrive, what remote operations return,
// and what every mote's tuple space holds at the end — though not on
// event timing: a bridged run advances its halves in alternating quanta,
// so arrival instants may differ by a few quanta from the oracle's. That
// is the contract WithTransportBridge documents, and this suite is what
// holds the bridge to it.

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/agilla-go/agilla/program"
)

// courierSrc stamps <"vst", here> at its destination and halts — arrival
// leaves permanent evidence in the destination's tuple space.
const courierSrc = "pushn vst\nloc\npushc 2\nout\nhalt"

// confField is the shared topology of the conformance scenario: a 6x4
// grid split down the middle, columns 1-3 in process A (with the default
// base at (0,0)), columns 4-6 in process B (base relocated off-field).
const (
	confW, confH = 6, 4
	confSeed     = 11
)

var confBBase = Loc(100, 100)

func confSplit() (aOwned, bOwned []Location) {
	for y := int16(1); y <= confH; y++ {
		for x := int16(1); x <= confW; x++ {
			if x <= confW/2 {
				aOwned = append(aOwned, Loc(x, y))
			} else {
				bOwned = append(bOwned, Loc(x, y))
			}
		}
	}
	return
}

// newBridgedPair builds the two half-networks over the given transport
// addresses and wires A's idle hook to co-drive B, so driving A (WarmUp,
// Run, RemoteClient calls) advances both halves in lockstep quanta. All
// workload initiation goes through A; B follows.
func newBridgedPair(t *testing.T, addrA, addrB string, idleExtra func()) (a, b *Network) {
	t.Helper()
	aOwned, bOwned := confSplit()
	var err error
	a, err = New(
		WithTopology(Grid(confW, confH)),
		WithSeed(confSeed),
		WithReliableRadio(),
		WithTransportBridge(BridgeConfig{
			Listen: addrA,
			Peers:  []BridgePeer{{Addr: addrB, Locations: append(bOwned, confBBase)}},
		}),
	)
	if err != nil {
		t.Fatalf("half A: %v", err)
	}
	b, err = New(
		WithTopology(Grid(confW, confH)),
		WithSeed(confSeed),
		WithReliableRadio(),
		WithTransportBridge(BridgeConfig{
			Listen:  addrB,
			BaseLoc: &confBBase,
			Peers:   []BridgePeer{{Addr: addrA, Locations: append(aOwned, Loc(0, 0))}},
		}),
	)
	if err != nil {
		a.Close()
		t.Fatalf("half B: %v", err)
	}
	// Replace A's wall-clock pacing with co-driving B: each of A's pump
	// quanta is followed by one of B's, keeping the two virtual clocks
	// within a quantum of each other without any real-time coupling.
	a.idle = func(step time.Duration) {
		if err := b.stepBridged(step); err != nil {
			t.Errorf("co-driving half B: %v", err)
		}
		if idleExtra != nil {
			idleExtra()
		}
	}
	b.idle = nil // B is only ever driven through A's hook
	t.Cleanup(func() { b.Close() })
	t.Cleanup(func() { a.Close() })
	// WarmUp through A starts A's beacons and pumps both borders; B's
	// beacons need its own Start, which WarmUp would otherwise do.
	b.d.Start()
	if err := a.WarmUp(); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// confOutcome is everything the scenario observes; oracle and bridged
// runs must produce equal outcomes.
type confOutcome struct {
	courierTuple string   // the <"vst", loc> stamp found at the courier's destination
	rrdpFar      string   // rrdp result from the far (B-owned) mote
	rinpFar      string   // rinp result from the far mote
	rrdpNear     string   // rrdp result from a near (A-owned) mote
	spaces       []string // "loc: sorted tuples" for every mote with tuples
}

func renderTuple(tp Tuple, ok bool) string {
	if !ok {
		return "<none>"
	}
	return fmt.Sprint(tp)
}

// ownerOf returns the network holding loc's node in a bridged pair.
func ownerOf(a, b *Network, loc Location) *Network {
	if a.bridgeOwns(loc) {
		return b
	}
	return a
}

// playConformance runs the shared workload. drive is the initiating
// network (the oracle itself, or half A of a bridged pair); lookup
// resolves which network hosts a location's node for state reads (the
// identity for the oracle).
func playConformance(t *testing.T, drive *Network, lookup func(Location) *Network) confOutcome {
	t.Helper()
	var out confOutcome
	farDest := Loc(confW, confH) // deep in B's half
	farMote := Loc(5, 2)         // B-owned
	nearMote := Loc(2, 2)        // A-owned

	// A courier agent migrates hop by hop from A's base across the border.
	courier := program.MustParse(courierSrc).WithName("courier")
	if _, err := drive.Launch(courier, farDest); err != nil {
		t.Fatal(err)
	}
	stamped := Tmpl(Str("vst"), TypeV(3))
	arrived, err := drive.RunUntil(func() bool {
		return lookup(farDest).Count(farDest, stamped) > 0
	}, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !arrived {
		t.Fatalf("courier never stamped %v", farDest)
	}
	tp, ok := lookup(farDest).Read(farDest, stamped)
	out.courierTuple = renderTuple(tp, ok)

	// Remote tuple space operations from the base: two inserts and a
	// removal on a far mote across the border, a read-back, and a near
	// control case that never touches the wire.
	rc := drive.Remote()
	if err := rc.Rout(farMote, T(Str("cfg"), Int(1))); err != nil {
		t.Fatalf("rout #1 to %v: %v", farMote, err)
	}
	if err := rc.Rout(farMote, T(Str("cfg"), Int(2))); err != nil {
		t.Fatalf("rout #2 to %v: %v", farMote, err)
	}
	if err := rc.Rout(nearMote, T(Str("cfg"), Int(3))); err != nil {
		t.Fatalf("rout to %v: %v", nearMote, err)
	}
	tp, ok, err = rc.Rrdp(farMote, Tmpl(Str("cfg"), TypeV(1)))
	if err != nil {
		t.Fatalf("rrdp %v: %v", farMote, err)
	}
	out.rrdpFar = renderTuple(tp, ok)
	tp, ok, err = rc.Rinp(farMote, Tmpl(Str("cfg"), Int(1)))
	if err != nil {
		t.Fatalf("rinp %v: %v", farMote, err)
	}
	out.rinpFar = renderTuple(tp, ok)
	tp, ok, err = rc.Rrdp(nearMote, Tmpl(Str("cfg"), TypeV(1)))
	if err != nil {
		t.Fatalf("rrdp %v: %v", nearMote, err)
	}
	out.rrdpNear = renderTuple(tp, ok)

	// Let in-flight traffic quiesce, then capture every mote's tuple
	// space as an order-independent snapshot (the eventual state, not the
	// event schedule, is what a bridged run reproduces).
	if err := drive.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for y := int16(1); y <= confH; y++ {
		for x := int16(1); x <= confW; x++ {
			loc := Loc(x, y)
			tuples := lookup(loc).Tuples(loc)
			if len(tuples) == 0 {
				continue
			}
			rows := make([]string, len(tuples))
			for i, tp := range tuples {
				rows[i] = fmt.Sprint(tp)
			}
			sort.Strings(rows)
			out.spaces = append(out.spaces, fmt.Sprintf("%v: %v", loc, rows))
		}
	}
	return out
}

// TestBridgeConformanceLoopback is the tentpole conformance check: one
// seeded scenario, run single-process and run split over the Loopback
// transport, must agree on agent arrival, remote-op results, and final
// tuple-space contents.
func TestBridgeConformanceLoopback(t *testing.T) {
	oracle, err := New(
		WithTopology(Grid(confW, confH)),
		WithSeed(confSeed),
		WithReliableRadio(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	if err := oracle.WarmUp(); err != nil {
		t.Fatal(err)
	}
	want := playConformance(t, oracle, func(Location) *Network { return oracle })

	a, b := newBridgedPair(t, "loop:conf-a", "loop:conf-b", nil)
	got := playConformance(t, a, func(loc Location) *Network { return ownerOf(a, b, loc) })

	if got.courierTuple != want.courierTuple {
		t.Errorf("courier stamp: bridged %s, oracle %s", got.courierTuple, want.courierTuple)
	}
	if got.rrdpFar != want.rrdpFar {
		t.Errorf("far rrdp: bridged %s, oracle %s", got.rrdpFar, want.rrdpFar)
	}
	if got.rinpFar != want.rinpFar {
		t.Errorf("far rinp: bridged %s, oracle %s", got.rinpFar, want.rinpFar)
	}
	if got.rrdpNear != want.rrdpNear {
		t.Errorf("near rrdp: bridged %s, oracle %s", got.rrdpNear, want.rrdpNear)
	}
	if fmt.Sprint(got.spaces) != fmt.Sprint(want.spaces) {
		t.Errorf("final tuple spaces diverge:\nbridged: %v\noracle:  %v", got.spaces, want.spaces)
	}

	// The workload genuinely crossed the wire, in both directions.
	for name, nw := range map[string]*Network{"A": a, "B": b} {
		st := nw.Bridge().Stats()
		if st.Relayed == 0 || st.Injected == 0 {
			t.Errorf("half %s border stats %+v: want traffic both ways", name, st)
		}
		if st.Misrouted != 0 {
			t.Errorf("half %s misrouted %d frames", name, st.Misrouted)
		}
	}
}

// TestBridgeConformanceUDP is the real-socket smoke test: the same split
// scenario over localhost UDP, co-driven with a short wall-clock grace
// per quantum so datagrams in flight land. Run under -race in CI. The
// assertions are outcome-level only — UDP delivery order is not
// reproducible and the radio is reliable but the wire could in principle
// drop, so the protocol retransmission layers are part of what is being
// smoked here.
func TestBridgeConformanceUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets; skipped in -short")
	}
	playSocketConformance(t, "udp:127.0.0.1:39701", "udp:127.0.0.1:39702")
}

// TestBridgeConformanceTCP runs the same split scenario over the
// localhost TCP stream transport: same outcome-level assertions, plus
// the stream's losslessness means nothing here leans on retransmission.
func TestBridgeConformanceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets; skipped in -short")
	}
	playSocketConformance(t, "tcp:127.0.0.1:39703", "tcp:127.0.0.1:39704")
}

// playSocketConformance runs the split scenario over a real-socket
// transport pair and asserts outcomes, two-way border traffic, and that
// the wire path actually batched.
func playSocketConformance(t *testing.T, addrA, addrB string) {
	t.Helper()
	a, b := newBridgedPair(t, addrA, addrB,
		func() { time.Sleep(50 * time.Microsecond) })
	got := playConformance(t, a, func(loc Location) *Network { return ownerOf(a, b, loc) })

	if got.courierTuple == "<none>" {
		t.Error("courier left no stamp at its destination")
	}
	if got.rrdpFar == "<none>" || got.rinpFar == "<none>" {
		t.Errorf("far-mote remote ops failed over the wire: rrdp=%s rinp=%s", got.rrdpFar, got.rinpFar)
	}
	if got.rrdpNear == "<none>" {
		t.Errorf("near-mote remote op failed: %s", got.rrdpNear)
	}
	for name, nw := range map[string]*Network{"A": a, "B": b} {
		st := nw.Bridge().Stats()
		if st.Relayed == 0 || st.Injected == 0 {
			t.Errorf("half %s border stats %+v: want traffic both ways", name, st)
		}
		var batches, sent uint64
		for _, ps := range nw.Bridge().TransportStats() {
			batches += ps.Batches
			sent += ps.Sent
		}
		if sent > 0 && batches == 0 {
			t.Errorf("half %s sent %d frames in 0 batches: coalescer bypassed", name, sent)
		}
	}
}
