// Package agilla is a Go reproduction of Agilla, the mobile-agent
// middleware for wireless sensor networks from "Rapid Development and
// Flexible Deployment of Adaptive Wireless Sensor Network Applications"
// (Fok, Roman, Lu — ICDCS 2005 / WUCSE-2004-59).
//
// An Agilla network is deployed with no pre-installed application. Users
// inject mobile agents — tiny stack-machine programs written in a
// high-level assembly — that migrate and clone across nodes, coordinating
// through per-node Linda-like tuple spaces with reactions.
//
// The original runs on MICA2 motes under TinyOS; this package runs the
// complete middleware on a deterministic discrete-event mote simulator
// with a calibrated CC1000 radio model, so protocol behavior (hop-by-hop
// migration with acknowledgments, remote tuple space operations, neighbor
// discovery, greedy geographic routing) is reproduced faithfully at
// laptop scale.
//
// Quick start:
//
//	nw, err := agilla.NewNetwork(agilla.Options{Width: 5, Height: 5})
//	if err != nil { ... }
//	if err := nw.WarmUp(); err != nil { ... }
//	id, err := nw.Inject(`
//		pushc 7
//		putled
//		halt
//	`, agilla.Loc(3, 3))
//	_ = nw.Run(5 * time.Second)
package agilla

import (
	"fmt"
	"time"

	"github.com/agilla-go/agilla/internal/asm"
	"github.com/agilla-go/agilla/internal/core"
	"github.com/agilla-go/agilla/internal/firesim"
	"github.com/agilla-go/agilla/internal/radio"
	"github.com/agilla-go/agilla/internal/sensor"
	"github.com/agilla-go/agilla/internal/topology"
	"github.com/agilla-go/agilla/internal/tuplespace"
	"github.com/agilla-go/agilla/internal/wire"
)

// Location is a node address: Agilla addresses nodes by physical location
// (§2.2 of the paper).
type Location = topology.Location

// Loc constructs a Location.
func Loc(x, y int16) Location { return topology.Loc(x, y) }

// Value is one typed datum: a tuple field or a VM stack slot.
type Value = tuplespace.Value

// Tuple is an ordered set of typed fields.
type Tuple = tuplespace.Tuple

// Template matches tuples by per-field equality with type wildcards.
type Template = tuplespace.Template

// SensorType identifies a sensor on the mote's board.
type SensorType = tuplespace.SensorType

// Sensor types carried by the default simulated board.
const (
	SensorTemperature = tuplespace.SensorTemperature
	SensorPhoto       = tuplespace.SensorPhoto
	SensorSound       = tuplespace.SensorSound
	SensorSmoke       = tuplespace.SensorSmoke
)

// Field drives what sensors read over space and time.
type Field = sensor.Field

// Fire is the wildfire environment of the paper's case study (§5). Use
// NewFire, ignite it, and pass it as Options.Field.
type Fire = firesim.Fire

// Node is one simulated mote running the middleware.
type Node = core.Node

// Trace observes middleware events across the network.
type Trace = core.Trace

// AgentState reports where an agent is in its life cycle.
type AgentState = core.AgentState

// Re-exported tuple field constructors.
var (
	// Int constructs an integer field.
	Int = tuplespace.Int
	// Str constructs a short string field (at most 3 characters).
	Str = tuplespace.Str
	// LocV constructs a location field.
	LocV = tuplespace.LocV
	// Reading constructs a sensor-reading field.
	Reading = tuplespace.Reading
	// TypeV constructs a type-wildcard field for templates.
	TypeV = tuplespace.TypeV
	// AgentIDV constructs an agent-id field.
	AgentIDV = tuplespace.AgentIDV
	// T builds a tuple from fields.
	T = tuplespace.T
	// Tmpl builds a template from fields.
	Tmpl = tuplespace.Tmpl
	// TypeOfSensor returns the wildcard matching readings of a sensor.
	TypeOfSensor = tuplespace.TypeOfSensor
)

// NewFire creates a fire environment spreading one cell every spreadEvery,
// clipped to the w×h deployment grid.
func NewFire(spreadEvery time.Duration, w, h int) *Fire {
	b := firesim.GridBounds(w, h)
	return firesim.New(spreadEvery, &b)
}

// Assemble compiles Agilla assembly (the dialect of Figures 2, 8, and 13)
// to agent bytecode.
func Assemble(src string) ([]byte, error) { return asm.Assemble(src) }

// MustAssemble is Assemble, panicking on error; for hard-coded programs.
func MustAssemble(src string) []byte { return asm.MustAssemble(src) }

// Disassemble renders agent bytecode as assembly text.
func Disassemble(code []byte) (string, error) { return asm.Disassemble(code) }

// Options configures a simulated deployment. The zero value builds the
// paper's testbed: a 5×5 MICA2 grid with the calibrated lossy CC1000
// model, a base station at (0,0) bridged to the gateway mote (1,1), and
// per-node budgets from §3.2 (4 agents, 440 B instruction memory, 600 B
// tuple space, 400 B reaction registry).
type Options struct {
	// Width and Height size the mote grid (default 5×5).
	Width, Height int
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// Reliable selects a zero-loss radio (default: the calibrated lossy
	// model that regenerates the paper's Figures 9-11).
	Reliable bool
	// Field drives sensor readings (default: everything reads 0).
	Field Field
	// NodeConfig overrides per-mote middleware budgets and protocol
	// timers; nil selects the paper's defaults.
	NodeConfig *core.Config
}

// Network is a running Agilla deployment.
type Network struct {
	d    *core.Deployment
	w, h int
}

// NewNetwork builds a deployment per the options.
func NewNetwork(opts Options) (*Network, error) {
	if opts.Width <= 0 {
		opts.Width = 5
	}
	if opts.Height <= 0 {
		opts.Height = 5
	}
	cfg := core.DeploymentConfig{
		Width:  opts.Width,
		Height: opts.Height,
		Seed:   opts.Seed,
		Field:  opts.Field,
	}
	if opts.Reliable {
		p := radio.ZeroLoss()
		cfg.Radio = &p
	}
	if opts.NodeConfig != nil {
		cfg.Node = *opts.NodeConfig
	}
	d, err := core.NewGridDeployment(cfg)
	if err != nil {
		return nil, fmt.Errorf("agilla: %w", err)
	}
	return &Network{d: d, w: opts.Width, h: opts.Height}, nil
}

// Deployment exposes the underlying deployment for advanced use (the
// benchmark harness drives it directly).
func (nw *Network) Deployment() *core.Deployment { return nw.d }

// Trace returns the network-wide event trace; set its fields to observe
// arrivals, deaths, migrations, and tuple activity.
func (nw *Network) Trace() *Trace { return nw.d.Trace }

// Size returns the mote grid dimensions.
func (nw *Network) Size() (w, h int) { return nw.w, nw.h }

// Now returns the current virtual time.
func (nw *Network) Now() time.Duration { return nw.d.Sim.Now() }

// WarmUp starts beaconing and runs until neighbor discovery settles.
// Call once before injecting agents.
func (nw *Network) WarmUp() error { return nw.d.WarmUp() }

// Run advances virtual time by d.
func (nw *Network) Run(d time.Duration) error {
	return nw.d.Sim.Run(nw.d.Sim.Now() + d)
}

// RunUntil advances virtual time until pred is true or limit elapses,
// reporting whether pred became true.
func (nw *Network) RunUntil(pred func() bool, limit time.Duration) (bool, error) {
	return nw.d.Sim.RunUntil(pred, nw.d.Sim.Now()+limit)
}

// Inject assembles src and injects the agent from the base station to
// dest, returning the agent ID.
func (nw *Network) Inject(src string, dest Location) (uint16, error) {
	code, err := asm.Assemble(src)
	if err != nil {
		return 0, err
	}
	return nw.InjectCode(code, dest)
}

// InjectCode injects pre-assembled bytecode from the base station to dest.
func (nw *Network) InjectCode(code []byte, dest Location) (uint16, error) {
	if nw.d.Node(dest) == nil {
		return 0, fmt.Errorf("agilla: no node at %v", dest)
	}
	return nw.d.Base.InjectAgent(code, dest)
}

// Node returns the mote at loc, or nil. The base station is at (0,0).
func (nw *Network) Node(loc Location) *Node { return nw.d.Node(loc) }

// Base returns the base station node.
func (nw *Network) Base() *Node { return nw.d.Base }

// Out inserts a tuple directly into the tuple space at loc (a test and
// tooling convenience; agents use the out instruction).
func (nw *Network) Out(loc Location, t Tuple) error {
	n := nw.d.Node(loc)
	if n == nil {
		return fmt.Errorf("agilla: no node at %v", loc)
	}
	return n.Space().Out(t)
}

// Read copies the first tuple at loc matching the template.
func (nw *Network) Read(loc Location, p Template) (Tuple, bool) {
	n := nw.d.Node(loc)
	if n == nil {
		return Tuple{}, false
	}
	return n.Space().Rdp(p)
}

// Take removes and returns the first tuple at loc matching the template.
func (nw *Network) Take(loc Location, p Template) (Tuple, bool) {
	n := nw.d.Node(loc)
	if n == nil {
		return Tuple{}, false
	}
	return n.Space().Inp(p)
}

// Count returns how many tuples at loc match the template.
func (nw *Network) Count(loc Location, p Template) int {
	n := nw.d.Node(loc)
	if n == nil {
		return 0
	}
	return n.Space().Count(p)
}

// Tuples returns every tuple stored at loc, in insertion order.
func (nw *Network) Tuples(loc Location) []Tuple {
	n := nw.d.Node(loc)
	if n == nil {
		return nil
	}
	return n.Space().All()
}

// TotalAgents counts live agents across the network (including in-flight
// shells occupying slots).
func (nw *Network) TotalAgents() int { return nw.d.TotalAgents() }

// RemoteRead performs a base-station rrdp against loc, running the
// simulation until the reply arrives or the operation times out.
func (nw *Network) RemoteRead(loc Location, p Template) (Tuple, bool, error) {
	var reply *wire.RemoteReply
	nw.d.Base.RemoteOp(wire.OpRrdp, loc, Tuple{}, p, func(r wire.RemoteReply) {
		reply = &r
	})
	if _, err := nw.d.Sim.RunUntil(func() bool { return reply != nil }, nw.d.Sim.Now()+10*time.Second); err != nil {
		return Tuple{}, false, err
	}
	if reply == nil {
		return Tuple{}, false, fmt.Errorf("agilla: remote read of %v stalled", loc)
	}
	return reply.Tuple, reply.OK, nil
}

// GridLocations enumerates the mote locations of this network's grid.
func (nw *Network) GridLocations() []Location {
	return topology.GridLocations(nw.w, nw.h)
}
