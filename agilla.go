// Package agilla is a Go reproduction of Agilla, the mobile-agent
// middleware for wireless sensor networks from "Rapid Development and
// Flexible Deployment of Adaptive Wireless Sensor Network Applications"
// (Fok, Roman, Lu — ICDCS 2005 / WUCSE-2004-59).
//
// An Agilla network is deployed with no pre-installed application. Users
// inject mobile agents — tiny stack-machine programs written in a
// high-level assembly — that migrate and clone across nodes, coordinating
// through per-node Linda-like tuple spaces with reactions.
//
// The original runs on MICA2 motes under TinyOS; this package runs the
// complete middleware on a deterministic discrete-event mote simulator
// with a calibrated CC1000 radio model, so protocol behavior (hop-by-hop
// migration with acknowledgments, remote tuple space operations, neighbor
// discovery, greedy geographic routing) is reproduced faithfully at
// laptop scale.
//
// Quick start — build a deployment with functional options, inject an
// agent, and watch it through its handle:
//
//	nw, err := agilla.New(
//		agilla.WithTopology(agilla.Ring(12)),
//		agilla.WithSeed(7),
//	)
//	if err != nil { ... }
//	if err := nw.WarmUp(); err != nil { ... }
//	ag, err := nw.Inject(`
//		pushc 7
//		putled
//		halt
//	`, nw.Locations()[5])
//	if err != nil { ... }
//	done, _ := ag.WaitDone(30 * time.Second)
//	fmt.Println(done, ag.Hops(), ag.Location())
//
// Topologies other than the paper's 5×5 grid — Line, Ring, RandomDisk,
// and Custom coordinate sets — run the identical middleware over
// different geometry. The zero-argument New() builds the paper's testbed.
// For whole experiments (topology + field + agents + metrics, swept over
// seeds in parallel) see Scenario.
package agilla

import (
	"errors"
	"fmt"
	"time"

	"github.com/agilla-go/agilla/internal/asm"
	"github.com/agilla-go/agilla/internal/core"
	"github.com/agilla-go/agilla/internal/firesim"
	"github.com/agilla-go/agilla/internal/sensor"
	"github.com/agilla-go/agilla/internal/topology"
	"github.com/agilla-go/agilla/internal/tuplespace"
	"github.com/agilla-go/agilla/internal/wire"
)

// Location is a node address: Agilla addresses nodes by physical location
// (§2.2 of the paper).
type Location = topology.Location

// Loc constructs a Location.
func Loc(x, y int16) Location { return topology.Loc(x, y) }

// Value is one typed datum: a tuple field or a VM stack slot.
type Value = tuplespace.Value

// Tuple is an ordered set of typed fields.
type Tuple = tuplespace.Tuple

// Template matches tuples by per-field equality with type wildcards.
type Template = tuplespace.Template

// SensorType identifies a sensor on the mote's board.
type SensorType = tuplespace.SensorType

// Sensor types carried by the default simulated board.
const (
	SensorTemperature = tuplespace.SensorTemperature
	SensorPhoto       = tuplespace.SensorPhoto
	SensorSound       = tuplespace.SensorSound
	SensorSmoke       = tuplespace.SensorSmoke
)

// Field drives what sensors read over space and time.
type Field = sensor.Field

// Fire is the wildfire environment of the paper's case study (§5). Use
// NewFire, ignite it, and pass it with WithField.
type Fire = firesim.Fire

// Rect is an inclusive rectangle; Fire.Bounds clips the spread to one.
type Rect = firesim.Rect

// Node is one simulated mote running the middleware.
type Node = core.Node

// Trace observes middleware events across the network.
type Trace = core.Trace

// AgentState reports where an agent is in its life cycle.
type AgentState = core.AgentState

// AgentInfo is the deployment-wide record behind an Agent handle.
type AgentInfo = core.AgentInfo

// NodeConfig tunes per-mote middleware budgets and protocol timers; the
// zero value selects the paper's defaults (§3.2).
type NodeConfig = core.Config

// ErrRemoteTimeout reports that a remote tuple space operation exhausted
// its retransmission budget without a reply reaching the initiator.
var ErrRemoteTimeout = core.ErrRemoteTimeout

// Re-exported tuple field constructors.
var (
	// Int constructs an integer field.
	Int = tuplespace.Int
	// Str constructs a short string field (at most 3 characters).
	Str = tuplespace.Str
	// LocV constructs a location field.
	LocV = tuplespace.LocV
	// Reading constructs a sensor-reading field.
	Reading = tuplespace.Reading
	// TypeV constructs a type-wildcard field for templates.
	TypeV = tuplespace.TypeV
	// AgentIDV constructs an agent-id field.
	AgentIDV = tuplespace.AgentIDV
	// T builds a tuple from fields.
	T = tuplespace.T
	// Tmpl builds a template from fields.
	Tmpl = tuplespace.Tmpl
	// TypeOfSensor returns the wildcard matching readings of a sensor.
	TypeOfSensor = tuplespace.TypeOfSensor
)

// NewFire creates a fire environment spreading one cell every spreadEvery,
// clipped to the w×h deployment grid.
func NewFire(spreadEvery time.Duration, w, h int) *Fire {
	b := firesim.GridBounds(w, h)
	return firesim.New(spreadEvery, &b)
}

// Assemble compiles Agilla assembly (the dialect of Figures 2, 8, and 13)
// to agent bytecode.
func Assemble(src string) ([]byte, error) { return asm.Assemble(src) }

// MustAssemble is Assemble, panicking on error; for hard-coded programs.
func MustAssemble(src string) []byte { return asm.MustAssemble(src) }

// Disassemble renders agent bytecode as assembly text.
func Disassemble(code []byte) (string, error) { return asm.Disassemble(code) }

// Network is a running Agilla deployment.
type Network struct {
	d *core.Deployment
}

// Deployment exposes the underlying deployment for advanced use (the
// benchmark harness drives it directly).
func (nw *Network) Deployment() *core.Deployment { return nw.d }

// Trace returns the network-wide event trace; set its fields to observe
// arrivals, deaths, migrations, and tuple activity.
func (nw *Network) Trace() *Trace { return nw.d.Trace }

// Topology returns the name of the deployment's layout.
func (nw *Network) Topology() string { return nw.d.Layout().Name }

// Locations returns every mote location in deployment order (excluding
// the base station).
func (nw *Network) Locations() []Location { return nw.d.Locations() }

// GridLocations is a deprecated alias for Locations, kept for callers
// written against the grid-only API.
func (nw *Network) GridLocations() []Location { return nw.d.Locations() }

// Size returns the bounding-box dimensions of the mote layout; for a
// w×h grid it returns (w, h).
func (nw *Network) Size() (w, h int) {
	minX, minY, maxX, maxY := nw.d.Layout().Bounds()
	return int(maxX-minX) + 1, int(maxY-minY) + 1
}

// Bounds returns the inclusive bounding box of the mote layout; use it
// to clip environment models (e.g. Fire.Bounds) to the deployment.
func (nw *Network) Bounds() Rect {
	minX, minY, maxX, maxY := nw.d.Layout().Bounds()
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// Now returns the current virtual time.
func (nw *Network) Now() time.Duration { return nw.d.Sim.Now() }

// WarmUp starts beaconing and runs until neighbor discovery settles.
// Call once before injecting agents.
func (nw *Network) WarmUp() error { return nw.d.WarmUp() }

// Run advances virtual time by d.
func (nw *Network) Run(d time.Duration) error {
	return nw.d.Sim.Run(nw.d.Sim.Now() + d)
}

// RunUntil advances virtual time until pred is true or limit elapses,
// reporting whether pred became true.
func (nw *Network) RunUntil(pred func() bool, limit time.Duration) (bool, error) {
	return nw.d.Sim.RunUntil(pred, nw.d.Sim.Now()+limit)
}

// Inject assembles src and injects the agent from the base station to
// dest, returning a handle that tracks the agent across the network.
func (nw *Network) Inject(src string, dest Location) (*Agent, error) {
	code, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	return nw.InjectCode(code, dest)
}

// InjectCode injects pre-assembled bytecode from the base station to dest.
func (nw *Network) InjectCode(code []byte, dest Location) (*Agent, error) {
	if nw.d.Node(dest) == nil {
		return nil, fmt.Errorf("agilla: no node at %v", dest)
	}
	id, err := nw.d.Base.InjectAgent(code, dest)
	if err != nil {
		return nil, err
	}
	return &Agent{nw: nw, id: id}, nil
}

// Node returns the mote at loc, or nil. The base station is at (0,0).
func (nw *Network) Node(loc Location) *Node { return nw.d.Node(loc) }

// Base returns the base station node.
func (nw *Network) Base() *Node { return nw.d.Base }

// Out inserts a tuple directly into the tuple space at loc (a test and
// tooling convenience; agents use the out instruction).
func (nw *Network) Out(loc Location, t Tuple) error {
	n := nw.d.Node(loc)
	if n == nil {
		return fmt.Errorf("agilla: no node at %v", loc)
	}
	return n.Space().Out(t)
}

// Read copies the first tuple at loc matching the template.
func (nw *Network) Read(loc Location, p Template) (Tuple, bool) {
	n := nw.d.Node(loc)
	if n == nil {
		return Tuple{}, false
	}
	return n.Space().Rdp(p)
}

// Take removes and returns the first tuple at loc matching the template.
func (nw *Network) Take(loc Location, p Template) (Tuple, bool) {
	n := nw.d.Node(loc)
	if n == nil {
		return Tuple{}, false
	}
	return n.Space().Inp(p)
}

// Count returns how many tuples at loc match the template.
func (nw *Network) Count(loc Location, p Template) int {
	n := nw.d.Node(loc)
	if n == nil {
		return 0
	}
	return n.Space().Count(p)
}

// Tuples returns every tuple stored at loc, in insertion order.
func (nw *Network) Tuples(loc Location) []Tuple {
	n := nw.d.Node(loc)
	if n == nil {
		return nil
	}
	return n.Space().All()
}

// TotalAgents counts live agents across the network (including in-flight
// shells occupying slots).
func (nw *Network) TotalAgents() int { return nw.d.TotalAgents() }

// RemoteRead performs a base-station rrdp against loc, running the
// simulation until the reply arrives or the operation's retransmission
// budget (derived from the node configuration's remote-op timers) is
// exhausted. A timeout is reported as an error wrapping ErrRemoteTimeout;
// ok=false with a nil error means the operation executed but found no
// matching tuple.
func (nw *Network) RemoteRead(loc Location, p Template) (Tuple, bool, error) {
	var reply *wire.RemoteReply
	var opErr error
	nw.d.Base.RemoteOp(wire.OpRrdp, loc, Tuple{}, p, func(r wire.RemoteReply, err error) {
		reply, opErr = &r, err
	})
	// The remote manager itself resolves (reply or timeout failure) within
	// the budget; the slack covers reply-delivery event latency.
	deadline := core.RemoteOpBudget(nw.d.Base.Config()) + time.Second
	if _, err := nw.d.Sim.RunUntil(func() bool { return reply != nil }, nw.d.Sim.Now()+deadline); err != nil {
		return Tuple{}, false, err
	}
	if reply == nil || errors.Is(opErr, core.ErrRemoteTimeout) {
		return Tuple{}, false, fmt.Errorf("agilla: remote read of %v: %w", loc, ErrRemoteTimeout)
	}
	if opErr != nil {
		return Tuple{}, false, opErr
	}
	return reply.Tuple, reply.OK, nil
}
