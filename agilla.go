// Package agilla is a Go reproduction of Agilla, the mobile-agent
// middleware for wireless sensor networks from "Rapid Development and
// Flexible Deployment of Adaptive Wireless Sensor Network Applications"
// (Fok, Roman, Lu — ICDCS 2005 / WUCSE-2004-59).
//
// An Agilla network is deployed with no pre-installed application. Users
// inject mobile agents — tiny stack-machine programs written in a
// high-level assembly — that migrate and clone across nodes, coordinating
// through per-node Linda-like tuple spaces with reactions.
//
// The original runs on MICA2 motes under TinyOS; this package runs the
// complete middleware on a deterministic discrete-event mote simulator
// with a calibrated CC1000 radio model, so protocol behavior (hop-by-hop
// migration with acknowledgments, remote tuple space operations, neighbor
// discovery, greedy geographic routing) is reproduced faithfully at
// laptop scale.
//
// Quick start — build a deployment with functional options, author an
// agent with the typed program builder, launch it, and watch it through
// its handle:
//
//	nw, err := agilla.New(
//		agilla.WithTopology(agilla.Ring(12)),
//		agilla.WithSeed(7),
//	)
//	if err != nil { ... }
//	if err := nw.WarmUp(); err != nil { ... }
//	p, err := program.New("blink").PushC(7).Putled().Halt().Build()
//	if err != nil { ... }
//	ag, err := nw.Launch(p, nw.Locations()[5])
//	if err != nil { ... }
//	done, _ := ag.WaitDone(30 * time.Second)
//	fmt.Println(done, ag.Hops(), ag.Location())
//
// Agents are authored through the program package — a fluent typed
// builder with combinators, an assembler for the paper's textual
// dialect (program.Parse), raw bytecode adoption (program.FromBytes),
// and the paper's canned agents (program.Library). All three forms are
// statically verified and converge on one *Program value accepted by
// Network.Launch.
//
// Topologies other than the paper's 5×5 grid — Line, Ring, RandomDisk,
// and Custom coordinate sets — run the identical middleware over
// different geometry. The zero-argument New() builds the paper's testbed.
// For whole experiments (topology + field + agents + metrics, swept over
// seeds in parallel) see Scenario. Large deployments can run the
// simulation kernel itself on several cores with WithWorkers(n) — the
// sharded executor reproduces the sequential schedule event for event,
// so results stay byte-identical per seed (see the README's Scaling
// section).
//
// Hosts interact with a running network through three composable
// surfaces:
//
//   - Space — a per-node tuple space handle from nw.Space(loc), with
//     direct probes (Out/Rdp/Inp/Count/All) and reactive Watch(Template)
//     subscriptions delivering matching insertions on a channel.
//   - RemoteClient — the base station's over-the-air client from
//     nw.Remote(), exposing the wire operations Rout/Rinp/Rrdp with
//     deadlines derived from the node configuration, plus a network-wide
//     Query that fans rrdp out across every mote.
//   - Events — typed middleware events (agent arrivals and deaths,
//     migrations, remote ops, tuple activity, reaction firings, node
//     lifecycle) from nw.Events(filters...), replacing raw trace
//     callbacks.
//
// The world itself is dynamic: nodes die, recover, move, and drain
// batteries while the simulation runs — scripted with WorldEvent values
// (KillAt/ReviveAt/MoveAt), stochastically with a seeded ChurnProcess,
// or with per-mote batteries via WithEnergy — all deterministic per seed
// under both executors. See the README's "Dynamic worlds" section.
package agilla

import (
	"errors"
	"fmt"
	"time"

	"github.com/agilla-go/agilla/internal/asm"
	"github.com/agilla-go/agilla/internal/core"
	"github.com/agilla-go/agilla/internal/firesim"
	"github.com/agilla-go/agilla/internal/sensor"
	"github.com/agilla-go/agilla/internal/topology"
	"github.com/agilla-go/agilla/internal/transport"
	"github.com/agilla-go/agilla/internal/tuplespace"
	"github.com/agilla-go/agilla/program"
)

// Location is a node address: Agilla addresses nodes by physical location
// (§2.2 of the paper).
type Location = topology.Location

// Loc constructs a Location.
func Loc(x, y int16) Location { return topology.Loc(x, y) }

// Value is one typed datum: a tuple field or a VM stack slot.
type Value = tuplespace.Value

// Tuple is an ordered set of typed fields.
type Tuple = tuplespace.Tuple

// Template matches tuples by per-field equality with type wildcards.
type Template = tuplespace.Template

// SensorType identifies a sensor on the mote's board.
type SensorType = tuplespace.SensorType

// Sensor types carried by the default simulated board.
const (
	SensorTemperature = tuplespace.SensorTemperature
	SensorPhoto       = tuplespace.SensorPhoto
	SensorSound       = tuplespace.SensorSound
	SensorSmoke       = tuplespace.SensorSmoke
)

// Field drives what sensors read over space and time.
type Field = sensor.Field

// Fire is the wildfire environment of the paper's case study (§5). Use
// NewFire, ignite it, and pass it with WithField.
type Fire = firesim.Fire

// Rect is an inclusive rectangle; Fire.Bounds clips the spread to one.
type Rect = firesim.Rect

// Node is one simulated mote running the middleware.
type Node = core.Node

// AgentState reports where an agent is in its life cycle.
type AgentState = core.AgentState

// Agent life-cycle states, as reported by Agent.State.
const (
	AgentReady     = core.AgentReady     // runnable, in the engine's queue
	AgentSleeping  = core.AgentSleeping  // executed sleep
	AgentWaiting   = core.AgentWaiting   // executed wait; resumes on a reaction
	AgentBlocked   = core.AgentBlocked   // blocking in/rd with no match
	AgentMigrating = core.AgentMigrating // suspended while a transfer is in flight
	AgentRemote    = core.AgentRemote    // awaiting a remote tuple space reply
	AgentDead      = core.AgentDead      // reclaimed
)

// AgentInfo is the deployment-wide record behind an Agent handle.
type AgentInfo = core.AgentInfo

// NodeConfig tunes per-mote middleware budgets and protocol timers; the
// zero value selects the paper's defaults (§3.2).
type NodeConfig = core.Config

// ErrRemoteTimeout reports that a remote tuple space operation exhausted
// its retransmission budget without a reply reaching the initiator.
var ErrRemoteTimeout = core.ErrRemoteTimeout

// ErrNoSuchNode reports an operation addressed to a location where the
// deployment has no node. Launch, Inject, Space.Out, and RemoteClient
// operations wrap it; test with errors.Is.
var ErrNoSuchNode = errors.New("agilla: no such node")

// ErrAdmission reports that Launch rejected a program under
// WithAdmissionBudget: the static analysis found error-level defects, no
// finite per-burst energy bound, or a bound above the configured budget.
// The wrapped error carries the findings; test with errors.Is.
var ErrAdmission = errors.New("agilla: admission rejected program")

// Program is a verified agent program — the one currency accepted by
// Launch, whichever way it was authored. Build one with the program
// package: program.New() for the typed builder, program.Parse for
// assembly source, program.FromBytes for raw bytecode, or
// program.Library for the paper's canned agents.
type Program = program.Program

// Re-exported tuple field constructors.
var (
	// Int constructs an integer field.
	Int = tuplespace.Int
	// Str constructs a short string field (at most 3 characters).
	Str = tuplespace.Str
	// LocV constructs a location field.
	LocV = tuplespace.LocV
	// Reading constructs a sensor-reading field.
	Reading = tuplespace.Reading
	// TypeV constructs a type-wildcard field for templates.
	TypeV = tuplespace.TypeV
	// AgentIDV constructs an agent-id field.
	AgentIDV = tuplespace.AgentIDV
	// T builds a tuple from fields.
	T = tuplespace.T
	// Tmpl builds a template from fields.
	Tmpl = tuplespace.Tmpl
	// TypeOfSensor returns the wildcard matching readings of a sensor.
	TypeOfSensor = tuplespace.TypeOfSensor
)

// NewFire creates a fire environment spreading one cell every spreadEvery,
// clipped to the w×h deployment grid.
func NewFire(spreadEvery time.Duration, w, h int) *Fire {
	b := firesim.GridBounds(w, h)
	return firesim.New(spreadEvery, &b)
}

// Assemble compiles Agilla assembly (the dialect of Figures 2, 8, and 13)
// to agent bytecode.
//
// Deprecated: use program.Parse, which returns a *Program that Launch
// accepts directly and exposes the verifier's report.
func Assemble(src string) ([]byte, error) { return asm.Assemble(src) }

// MustAssemble is Assemble, panicking on error; for hard-coded programs.
//
// Deprecated: use program.MustParse.
func MustAssemble(src string) []byte { return asm.MustAssemble(src) }

// Disassemble renders agent bytecode as assembly text.
func Disassemble(code []byte) (string, error) { return asm.Disassemble(code) }

// Network is a running Agilla deployment.
type Network struct {
	d         *core.Deployment
	ev        events
	admission *admission

	// bridge, when non-nil, connects this process's half of the field to
	// peer processes over a transport (WithTransportBridge). Bridged runs
	// advance in quanta of the configured pump interval; idle runs after
	// each quantum (default: a 1:1 wall-clock sleep so concurrently
	// running peers keep pace — tests swap in a hook that co-drives the
	// peer network instead).
	bridge  *transport.Bridge
	quantum time.Duration
	idle    func(step time.Duration)
}

// admission is the resolved WithAdmissionBudget policy: the per-burst
// joule cap (0 = no cap, reject only uncertifiable programs) and the
// deployment's energy calibration for the static bound.
type admission struct {
	budgetJ float64
	costs   program.EnergyCosts
}

// check analyzes p and returns the admission decision.
func (a *admission) check(p *Program) error {
	rep := program.AnalyzeWithCosts(p, a.costs)
	if err := rep.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrAdmission, err)
	}
	if rep.EnergyUnbounded {
		return fmt.Errorf("%w: no finite energy bound (%s)", ErrAdmission, rep.UnboundedPos)
	}
	if a.budgetJ > 0 && rep.EnergyBoundJ() > a.budgetJ {
		return fmt.Errorf("%w: worst-case burst %.2g J exceeds budget %.2g J",
			ErrAdmission, rep.EnergyBoundJ(), a.budgetJ)
	}
	return nil
}

// Topology returns the name of the deployment's layout.
func (nw *Network) Topology() string { return nw.d.Layout().Name }

// Locations returns every mote location in deployment order (excluding
// the base station).
func (nw *Network) Locations() []Location { return nw.d.Locations() }

// Replication returns the deployment's replication configuration with
// defaults resolved, or nil when the network was built without
// WithReplication.
func (nw *Network) Replication() *Replication { return nw.d.Replication() }

// Field returns the sensor field driving this deployment's readings, or
// nil when all sensors read 0. A scenario's Play hook uses it to reach
// the environment (e.g. to ignite a *Fire) without carrying it
// separately.
func (nw *Network) Field() Field { return nw.d.Field() }

// Size returns the bounding-box dimensions of the mote layout; for a
// w×h grid it returns (w, h).
func (nw *Network) Size() (w, h int) {
	minX, minY, maxX, maxY := nw.d.Layout().Bounds()
	return int(maxX-minX) + 1, int(maxY-minY) + 1
}

// Bounds returns the inclusive bounding box of the mote layout; use it
// to clip environment models (e.g. Fire.Bounds) to the deployment.
func (nw *Network) Bounds() Rect {
	minX, minY, maxX, maxY := nw.d.Layout().Bounds()
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// Now returns the current virtual time.
func (nw *Network) Now() time.Duration { return nw.d.Sim.Now() }

// WarmUp starts beaconing and runs until neighbor discovery settles.
// Call once before injecting agents. On a bridged network the warm-up is
// pumped every quantum so beacons relay across the border and both halves
// discover their cross-process neighbors.
func (nw *Network) WarmUp() error {
	if nw.bridge == nil {
		return nw.d.WarmUp()
	}
	nw.d.Start()
	period := nw.d.Base.Config().Network.BeaconEvery
	if period <= 0 {
		period = 2 * time.Second
	}
	return nw.Run(2*period + period/2)
}

// Run advances virtual time by d. On a bridged network the run proceeds
// in pump quanta (see WithTransportBridge).
func (nw *Network) Run(d time.Duration) error {
	if nw.bridge != nil {
		_, err := nw.runUntilAt(nil, nw.d.Sim.Now()+d)
		return err
	}
	return nw.d.Sim.Run(nw.d.Sim.Now() + d)
}

// RunUntil advances virtual time until pred is true or limit elapses,
// reporting whether pred became true. Bridged networks evaluate pred at
// pump-quantum boundaries.
func (nw *Network) RunUntil(pred func() bool, limit time.Duration) (bool, error) {
	return nw.runUntilAt(pred, nw.d.Sim.Now()+limit)
}

// Launch injects a verified Program from the base station toward dest,
// returning a handle that tracks the agent across the network. This is
// the one entry point for all three authoring forms:
//
//	p := program.New("ping").MoveTo(dest).Halt().MustBuild()
//	ag, err := nw.Launch(p, dest)
//
// Launching at a location with no node fails with ErrNoSuchNode. Under
// WithAdmissionBudget, programs the static analysis cannot certify
// within the budget fail with ErrAdmission.
func (nw *Network) Launch(p *Program, dest Location) (*Agent, error) {
	if p == nil {
		return nil, fmt.Errorf("agilla: Launch needs a program")
	}
	if nw.d.Node(dest) == nil && !nw.bridgeOwns(dest) {
		return nil, fmt.Errorf("%w at %v", ErrNoSuchNode, dest)
	}
	if nw.admission != nil {
		if err := nw.admission.check(p); err != nil {
			return nil, err
		}
	}
	id, err := nw.d.Base.InjectAgent(p.Bytes(), dest)
	if err != nil {
		return nil, err
	}
	return &Agent{nw: nw, id: id}, nil
}

// Inject assembles src and injects the agent from the base station to
// dest.
//
// Deprecated: use program.Parse + Launch, which separates authoring
// errors from deployment errors and reuses the parsed program across
// injections.
func (nw *Network) Inject(src string, dest Location) (*Agent, error) {
	p, err := program.Parse(src)
	if err != nil {
		return nil, err
	}
	return nw.Launch(p, dest)
}

// InjectCode injects pre-assembled bytecode from the base station to
// dest.
//
// Deprecated: use program.FromBytes + Launch. Unlike this shim, the
// program package verifies the bytecode before it ships.
func (nw *Network) InjectCode(code []byte, dest Location) (*Agent, error) {
	p, err := program.FromBytes(code)
	if err != nil {
		return nil, err
	}
	return nw.Launch(p, dest)
}

// Node returns the mote at loc, or nil. The base station is at (0,0).
func (nw *Network) Node(loc Location) *Node { return nw.d.Node(loc) }

// Base returns the base station node.
func (nw *Network) Base() *Node { return nw.d.Base }

// Out inserts a tuple directly into the tuple space at loc.
//
// Deprecated: use nw.Space(loc).Out(t).
func (nw *Network) Out(loc Location, t Tuple) error { return nw.Space(loc).Out(t) }

// Read copies the first tuple at loc matching the template.
//
// Deprecated: use nw.Space(loc).Rdp(p).
func (nw *Network) Read(loc Location, p Template) (Tuple, bool) { return nw.Space(loc).Rdp(p) }

// Take removes and returns the first tuple at loc matching the template.
//
// Deprecated: use nw.Space(loc).Inp(p).
func (nw *Network) Take(loc Location, p Template) (Tuple, bool) { return nw.Space(loc).Inp(p) }

// Count returns how many tuples at loc match the template.
//
// Deprecated: use nw.Space(loc).Count(p).
func (nw *Network) Count(loc Location, p Template) int { return nw.Space(loc).Count(p) }

// Tuples returns every tuple stored at loc, in insertion order.
//
// Deprecated: use nw.Space(loc).All().
func (nw *Network) Tuples(loc Location) []Tuple { return nw.Space(loc).All() }

// TotalAgents counts live agents across the network (including in-flight
// shells occupying slots).
func (nw *Network) TotalAgents() int { return nw.d.TotalAgents() }

// RemoteRead performs a base-station rrdp against loc.
//
// Deprecated: use nw.Remote().Rrdp(loc, p), which sits beside the other
// wire operations and the network-wide Query.
func (nw *Network) RemoteRead(loc Location, p Template) (Tuple, bool, error) {
	return nw.Remote().Rrdp(loc, p)
}
