package agilla

// RemoteClient: the host-facing client for over-the-air remote tuple
// space operations. The paper's base station is "a Java application that
// allows a user to interact with the WSN by injecting agents and
// performing remote tuple space operations" (§3.1); RemoteClient is that
// second half, exposing all three wire operations plus a network-wide
// query built from them.

import (
	"errors"
	"fmt"
	"time"

	"github.com/agilla-go/agilla/internal/core"
	"github.com/agilla-go/agilla/internal/replica"
	"github.com/agilla-go/agilla/internal/tuplespace"
	"github.com/agilla-go/agilla/internal/wire"
)

// RemoteClient performs remote tuple space operations from the base
// station, over the simulated radio with the real end-to-end protocol:
// one-message requests, unacknowledged replies, initiator timeout and
// retransmission (§3.2). Each call runs the simulation until its reply
// arrives or the retransmission budget — derived from the base station's
// NodeConfig — is exhausted, which surfaces as an error wrapping
// ErrRemoteTimeout.
//
// Contrast with Space, whose operations execute directly on the host:
// RemoteClient operations cost virtual time, can be lost, and exercise
// routing — they are the real protocol.
type RemoteClient struct {
	nw *Network
}

// Remote returns the base station's remote-operation client.
func (nw *Network) Remote() *RemoteClient { return &RemoteClient{nw: nw} }

// opDeadline bounds how long one remote operation can take to resolve:
// the initiator's full retransmission budget plus slack for reply
// delivery latency.
func (rc *RemoteClient) opDeadline() time.Duration {
	return core.RemoteOpBudget(rc.nw.d.Base.Config()) + time.Second
}

// do ships one remote operation from the base station and runs the
// simulation until it resolves.
func (rc *RemoteClient) do(op wire.RemoteOp, dest Location, t Tuple, p Template) (wire.RemoteReply, error) {
	if rc.nw.d.Node(dest) == nil && !rc.nw.bridgeOwns(dest) {
		return wire.RemoteReply{}, fmt.Errorf("%w at %v", ErrNoSuchNode, dest)
	}
	var reply *wire.RemoteReply
	var opErr error
	rc.nw.d.Base.RemoteOp(op, dest, t, p, func(r wire.RemoteReply, err error) {
		reply, opErr = &r, err
	})
	// The remote manager resolves (reply or timeout failure) within the
	// budget; the slack covers reply-delivery event latency. On a bridged
	// network the run is pumped every quantum so the request, its
	// cross-border hops, and the reply all cross the wire.
	deadline := rc.nw.d.Sim.Now() + rc.opDeadline()
	if _, err := rc.nw.runUntilAt(func() bool { return reply != nil }, deadline); err != nil {
		return wire.RemoteReply{}, err
	}
	if reply == nil || errors.Is(opErr, core.ErrRemoteTimeout) {
		return wire.RemoteReply{}, fmt.Errorf("agilla: %v to %v: %w", op, dest, ErrRemoteTimeout)
	}
	if opErr != nil {
		return wire.RemoteReply{}, opErr
	}
	return *reply, nil
}

// Rout inserts a tuple into the space at dest over the air. A nil error
// means the responder confirmed the insertion; a full arena at the
// destination is reported as an error.
func (rc *RemoteClient) Rout(dest Location, t Tuple) error {
	reply, err := rc.do(wire.OpRout, dest, t, Template{})
	if err != nil {
		return err
	}
	if !reply.OK {
		return fmt.Errorf("agilla: rout to %v rejected (tuple space full)", dest)
	}
	return nil
}

// Rinp removes and returns the first tuple at dest matching the
// template. ok=false with a nil error means the operation executed and
// found no match; an error wrapping ErrRemoteTimeout means it may not
// have executed at all.
func (rc *RemoteClient) Rinp(dest Location, p Template) (Tuple, bool, error) {
	reply, err := rc.do(wire.OpRinp, dest, Tuple{}, p)
	if err != nil {
		return Tuple{}, false, err
	}
	return reply.Tuple, reply.OK, nil
}

// Rrdp copies the first tuple at dest matching the template without
// removing it. Result semantics are as for Rinp.
func (rc *RemoteClient) Rrdp(dest Location, p Template) (Tuple, bool, error) {
	reply, err := rc.do(wire.OpRrdp, dest, Tuple{}, p)
	if err != nil {
		return Tuple{}, false, err
	}
	return reply.Tuple, reply.OK, nil
}

// Match is one Query result: a matching tuple and the mote holding it.
type Match struct {
	Node  Location
	Tuple Tuple
}

// Query performs a network-wide rrdp: the request fans out to every mote
// concurrently (each with its own request ID, timeout, and
// retransmissions) and the replies are gathered into at most one Match
// per mote, in deployment order. Motes with no matching tuple — and
// motes whose operation timed out, indistinguishable end to end from
// no-match by design (§2.2) — simply contribute nothing. The error is
// non-nil only if the simulation itself fails.
//
// Under WithReplication the fan-out is routed: the template's key hashes
// to an affinity group, the motes of that group — where gossip
// concentrates replicas of matching tuples — are probed first, and the
// rest of the network is probed only if the group comes up empty. A keyed
// lookup that the group answers therefore costs |group| operations
// instead of |network|. Templates with no key (leading wildcard field)
// fall back to the flat fan-out.
func (rc *RemoteClient) Query(p Template) ([]Match, error) {
	locs := rc.nw.Locations()
	if cfg := rc.nw.Replication(); cfg != nil && cfg.Groups > 1 {
		if key, ok := replica.KeyOfTemplate(p); ok {
			g := replica.GroupOfKey(key, cfg.Groups)
			group := make([]Location, 0, len(locs))
			rest := make([]Location, 0, len(locs))
			for _, loc := range locs {
				if replica.GroupOfNode(loc, cfg.Groups) == g {
					group = append(group, loc)
				} else {
					rest = append(rest, loc)
				}
			}
			matches, err := rc.queryLocs(group, p)
			if err != nil || len(matches) > 0 {
				return matches, err
			}
			return rc.queryLocs(rest, p)
		}
	}
	return rc.queryLocs(locs, p)
}

// queryLocs fans one rrdp out to the given motes and gathers replies in
// the order given.
func (rc *RemoteClient) queryLocs(locs []Location, p Template) ([]Match, error) {
	if len(locs) == 0 {
		return nil, nil
	}
	byLoc := make(map[Location]tuplespace.Tuple, len(locs))
	remaining := len(locs)
	for _, loc := range locs {
		loc := loc
		rc.nw.d.Base.RemoteOp(wire.OpRrdp, loc, Tuple{}, p, func(r wire.RemoteReply, err error) {
			remaining--
			if err == nil && r.OK {
				byLoc[loc] = r.Tuple
			}
		})
	}
	deadline := rc.nw.d.Sim.Now() + rc.opDeadline()
	if _, err := rc.nw.runUntilAt(func() bool { return remaining == 0 }, deadline); err != nil {
		return nil, err
	}
	matches := make([]Match, 0, len(byLoc))
	for _, loc := range locs {
		if t, ok := byLoc[loc]; ok {
			matches = append(matches, Match{Node: loc, Tuple: t})
		}
	}
	return matches, nil
}
