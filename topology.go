package agilla

import (
	"errors"
	"fmt"

	"github.com/agilla-go/agilla/internal/topology"
)

// ErrDisconnected reports a topology that realized into more than one
// connected component: some motes could never exchange a frame, so any
// scenario needing them would stall. New refuses such topologies with
// this error (test with errors.Is); probe ahead of time with
// Topology.Connected or search for a workable seed with
// Topology.FindConnectedSeed.
var ErrDisconnected = errors.New("agilla: topology is disconnected")

// Topology describes where motes sit and which pairs can hear each other.
// A Topology is a plan, not a network: randomized topologies are realized
// with the deployment seed at New time, so the same seed reproduces the
// same placement. Build one with Grid, Line, Ring, RandomDisk, or Custom,
// and pass it to New via WithTopology.
type Topology struct {
	name    string
	realize func(seed int64) (topology.Layout, error)
}

// String returns the topology's descriptive name.
func (t Topology) String() string { return t.name }

// fixed wraps a deterministic layout as a Topology.
func fixed(l topology.Layout) Topology {
	return Topology{name: l.Name, realize: func(int64) (topology.Layout, error) { return l, nil }}
}

// defaultTopology is what the zero Topology value means everywhere (New,
// Scenario.Topology, Topology.Connected): the paper's 5×5 testbed.
func defaultTopology() Topology { return Grid(5, 5) }

// Grid is the paper's testbed shape: a w×h mote grid rooted at (1,1) with
// radio links between immediate 4-neighbors and the gateway at (1,1).
func Grid(w, h int) Topology {
	if w <= 0 || h <= 0 {
		return Topology{name: "grid (invalid)", realize: func(int64) (topology.Layout, error) {
			return topology.Layout{}, fmt.Errorf("grid topology needs positive dimensions, got %dx%d", w, h)
		}}
	}
	return fixed(topology.GridLayout(w, h))
}

// Line places n motes in a row: mote (h,1) is exactly h hops from the
// base station, the shape behind the paper's Figure 9/10 hop sweeps.
func Line(n int) Topology {
	if n <= 0 {
		return Topology{name: "line (invalid)", realize: func(int64) (topology.Layout, error) {
			return topology.Layout{}, fmt.Errorf("line topology needs at least 1 node, got %d", n)
		}}
	}
	return fixed(topology.LineLayout(n))
}

// Ring places n motes (minimum 3) on a circle, each linked to its two
// ring neighbors, so multi-hop traffic is relayed along the arc. Routing
// is the paper's best-effort greedy forwarding: legs approaching half the
// circumference can stall in a geometric local minimum (integer
// coordinates distort the circle), exactly as a physical deployment
// would; split long journeys into shorter waypoint legs.
func Ring(n int) Topology {
	if n < 3 {
		return Topology{name: "ring (invalid)", realize: func(int64) (topology.Layout, error) {
			return topology.Layout{}, fmt.Errorf("ring topology needs at least 3 nodes, got %d", n)
		}}
	}
	return fixed(topology.RingLayout(n))
}

// RandomDisk scatters n motes uniformly over the [1,side]² region and
// connects pairs within radioRange of each other (unit-disk model).
// Placement is drawn from the deployment seed; the sampler redraws
// disconnected graphs, and New fails if no connected placement is found
// at the requested density.
func RandomDisk(n, side int, radioRange float64) Topology {
	return Topology{
		name: fmt.Sprintf("random disk n=%d side=%d r=%.2g", n, side, radioRange),
		realize: func(seed int64) (topology.Layout, error) {
			if n < 1 || side < 2 || radioRange <= 0 {
				return topology.Layout{}, fmt.Errorf(
					"random disk topology needs n>=1, side>=2, range>0; got n=%d side=%d r=%.2g", n, side, radioRange)
			}
			if n > side*side {
				return topology.Layout{}, fmt.Errorf(
					"random disk topology cannot place %d distinct motes in a %d×%d region", n, side, side)
			}
			l := topology.RandomDiskLayout(n, side, radioRange, seed)
			if !l.IsConnected() {
				return topology.Layout{}, fmt.Errorf(
					"%w: random disk (n=%d side=%d r=%.2g) stayed partitioned; raise the range or density, or probe seeds with FindConnectedSeed",
					ErrDisconnected, n, side, radioRange)
			}
			return l, nil
		},
	}
}

// Custom deploys motes at explicit coordinates with unit-disk links of
// the given range. The base station bridges to the mote closest to (0,0).
// No coordinate may be (0,0) (reserved for the base station) and no two
// motes may share a location.
func Custom(radioRange float64, locs ...Location) Topology {
	l := topology.CustomLayout(fmt.Sprintf("custom %d nodes", len(locs)), locs, topology.Disk{Range: radioRange})
	return Topology{name: l.Name, realize: func(int64) (topology.Layout, error) { return l, nil }}
}

// Connected realizes the topology with seed and reports whether every
// mote can reach every other over its links — the connectivity check a
// scenario should make before relying on network-wide coordination. A
// realization rejected for being partitioned (RandomDisk at low density)
// reports (false, nil): that is the answer, not a failure. Other
// realization problems (invalid parameters) surface as the error.
func (t Topology) Connected(seed int64) (bool, error) {
	if t.realize == nil {
		t = defaultTopology()
	}
	l, err := t.realize(seed)
	if err != nil {
		if errors.Is(err, ErrDisconnected) {
			return false, nil
		}
		return false, err
	}
	return l.IsConnected(), nil
}

// FindConnectedSeed is the seeded-retry escape hatch for randomized
// topologies: it probes seed, seed+1, ... for at most tries attempts and
// returns the first seed whose realization is connected. ok is false
// when no probed seed works (density genuinely too low) or the topology
// is invalid.
func (t Topology) FindConnectedSeed(seed int64, tries int) (int64, bool) {
	for i := 0; i < tries; i++ {
		s := seed + int64(i)
		connected, err := t.Connected(s)
		if err != nil {
			return 0, false
		}
		if connected {
			return s, true
		}
	}
	return 0, false
}
