package agilla

import (
	"fmt"

	"github.com/agilla-go/agilla/internal/topology"
)

// Topology describes where motes sit and which pairs can hear each other.
// A Topology is a plan, not a network: randomized topologies are realized
// with the deployment seed at New time, so the same seed reproduces the
// same placement. Build one with Grid, Line, Ring, RandomDisk, or Custom,
// and pass it to New via WithTopology.
type Topology struct {
	name    string
	realize func(seed int64) (topology.Layout, error)
}

// String returns the topology's descriptive name.
func (t Topology) String() string { return t.name }

// fixed wraps a deterministic layout as a Topology.
func fixed(l topology.Layout) Topology {
	return Topology{name: l.Name, realize: func(int64) (topology.Layout, error) { return l, nil }}
}

// Grid is the paper's testbed shape: a w×h mote grid rooted at (1,1) with
// radio links between immediate 4-neighbors and the gateway at (1,1).
func Grid(w, h int) Topology {
	if w <= 0 || h <= 0 {
		return Topology{name: "grid (invalid)", realize: func(int64) (topology.Layout, error) {
			return topology.Layout{}, fmt.Errorf("grid topology needs positive dimensions, got %dx%d", w, h)
		}}
	}
	return fixed(topology.GridLayout(w, h))
}

// Line places n motes in a row: mote (h,1) is exactly h hops from the
// base station, the shape behind the paper's Figure 9/10 hop sweeps.
func Line(n int) Topology {
	if n <= 0 {
		return Topology{name: "line (invalid)", realize: func(int64) (topology.Layout, error) {
			return topology.Layout{}, fmt.Errorf("line topology needs at least 1 node, got %d", n)
		}}
	}
	return fixed(topology.LineLayout(n))
}

// Ring places n motes (minimum 3) on a circle, each linked to its two
// ring neighbors, so multi-hop traffic is relayed along the arc. Routing
// is the paper's best-effort greedy forwarding: legs approaching half the
// circumference can stall in a geometric local minimum (integer
// coordinates distort the circle), exactly as a physical deployment
// would; split long journeys into shorter waypoint legs.
func Ring(n int) Topology {
	if n < 3 {
		return Topology{name: "ring (invalid)", realize: func(int64) (topology.Layout, error) {
			return topology.Layout{}, fmt.Errorf("ring topology needs at least 3 nodes, got %d", n)
		}}
	}
	return fixed(topology.RingLayout(n))
}

// RandomDisk scatters n motes uniformly over the [1,side]² region and
// connects pairs within radioRange of each other (unit-disk model).
// Placement is drawn from the deployment seed; the sampler redraws
// disconnected graphs, and New fails if no connected placement is found
// at the requested density.
func RandomDisk(n, side int, radioRange float64) Topology {
	return Topology{
		name: fmt.Sprintf("random disk n=%d side=%d r=%.2g", n, side, radioRange),
		realize: func(seed int64) (topology.Layout, error) {
			if n < 1 || side < 2 || radioRange <= 0 {
				return topology.Layout{}, fmt.Errorf(
					"random disk topology needs n>=1, side>=2, range>0; got n=%d side=%d r=%.2g", n, side, radioRange)
			}
			if n > side*side {
				return topology.Layout{}, fmt.Errorf(
					"random disk topology cannot place %d distinct motes in a %d×%d region", n, side, side)
			}
			l := topology.RandomDiskLayout(n, side, radioRange, seed)
			if !l.IsConnected() {
				return topology.Layout{}, fmt.Errorf(
					"random disk topology (n=%d side=%d r=%.2g) stayed partitioned; raise the range or density",
					n, side, radioRange)
			}
			return l, nil
		},
	}
}

// Custom deploys motes at explicit coordinates with unit-disk links of
// the given range. The base station bridges to the mote closest to (0,0).
// No coordinate may be (0,0) (reserved for the base station) and no two
// motes may share a location.
func Custom(radioRange float64, locs ...Location) Topology {
	l := topology.CustomLayout(fmt.Sprintf("custom %d nodes", len(locs)), locs, topology.Disk{Range: radioRange})
	return Topology{name: l.Name, realize: func(int64) (topology.Layout, error) { return l, nil }}
}
