package agilla_test

// Tests for the typed event stream: subscription, filtering, variant
// payloads, Close semantics, and the readable String forms of the public
// enums.

import (
	"testing"
	"time"

	"github.com/agilla-go/agilla"
)

// drainEvents closes the network's subscriptions and collects everything
// already queued on ch.
func drainEvents(nw *agilla.Network, ch <-chan agilla.Event) []agilla.Event {
	nw.Close()
	var out []agilla.Event
	for e := range ch {
		out = append(out, e)
	}
	return out
}

func TestEventsObserveAgentLifecycle(t *testing.T) {
	nw := reliableGrid(t, 3, 1)
	all := nw.Events()

	ag, err := nw.Inject(marker, agilla.Loc(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if done, err := ag.WaitDone(time.Minute); err != nil || !done {
		t.Fatalf("marker agent: done=%v err=%v", done, err)
	}
	events := drainEvents(nw, all)

	var arrived, started, migDone, halted, tupleOut int
	var lastWhen time.Duration
	for _, e := range events {
		if e.When() < lastWhen {
			t.Fatalf("events out of order: %v after %v", e.When(), lastWhen)
		}
		lastWhen = e.When()
		switch ev := e.(type) {
		case agilla.AgentArrived:
			arrived++
			if ev.AgentID != ag.ID() || ev.Mig != agilla.MigInject {
				t.Errorf("arrival = %+v", ev)
			}
			if ev.Node != agilla.Loc(3, 1) {
				t.Errorf("arrived at %v, want (3,1)", ev.Node)
			}
		case agilla.MigrationStarted:
			started++
		case agilla.MigrationDone:
			migDone++
			if !ev.OK {
				t.Errorf("hop failed on a reliable radio: %v", ev)
			}
		case agilla.AgentHalted:
			halted++
			if ev.AgentID != ag.ID() || ev.Node != agilla.Loc(3, 1) {
				t.Errorf("halt = %+v", ev)
			}
		case agilla.TupleOut:
			tupleOut++
		}
	}
	// Injection to (3,1) is 3 hops: base->gateway, then two relays. The
	// agent arrives (and halts) only at the final destination.
	if arrived != 1 || halted != 1 {
		t.Errorf("arrived=%d halted=%d, want 1 each", arrived, halted)
	}
	// MigrationStarted fires when the injecting node opens the transfer;
	// MigrationDone fires per concluded hop (base->gateway plus two
	// relays).
	if started < 1 || migDone < 3 {
		t.Errorf("started=%d done=%d hop events, want >= 1 and >= 3", started, migDone)
	}
	if tupleOut == 0 {
		t.Error("no tuple-out events (the marker stamps its destination)")
	}
}

func TestEventFilters(t *testing.T) {
	nw := reliableGrid(t, 2, 1)
	near, far := agilla.Loc(1, 1), agilla.Loc(2, 1)

	onlyFar := nw.Events(agilla.OfKind(agilla.EventTupleOut), agilla.OnNode(far))
	if err := nw.Space(near).Out(agilla.T(agilla.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := nw.Space(far).Out(agilla.T(agilla.Int(2))); err != nil {
		t.Fatal(err)
	}
	events := drainEvents(nw, onlyFar)
	if len(events) != 1 {
		t.Fatalf("filtered stream delivered %d events, want 1: %v", len(events), events)
	}
	out := events[0].(agilla.TupleOut)
	if out.Node != far || out.Tuple.Fields[0].A != 2 {
		t.Fatalf("wrong event passed the filter: %v", out)
	}
}

func TestEventFilterByAgent(t *testing.T) {
	nw := reliableGrid(t, 2, 1)
	first, err := nw.Inject("halt", agilla.Loc(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	second, err := nw.Inject("halt", agilla.Loc(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	halts := nw.Events(agilla.OfKind(agilla.EventAgentHalted), agilla.OfAgent(second.ID()))
	for _, ag := range []*agilla.Agent{first, second} {
		if done, err := ag.WaitDone(time.Minute); err != nil || !done {
			t.Fatalf("agent %d: done=%v err=%v", ag.ID(), done, err)
		}
	}
	events := drainEvents(nw, halts)
	if len(events) != 1 {
		t.Fatalf("agent filter passed %d events, want 1: %v", len(events), events)
	}
	if id, ok := agilla.OfAgent(second.ID()), true; !ok || !id(events[0]) {
		t.Fatalf("event %v does not concern agent %d", events[0], second.ID())
	}
}

func TestReactionFiredEvent(t *testing.T) {
	nw := reliableGrid(t, 2, 1)
	mote := agilla.Loc(2, 1)

	// A tracker-style agent: register a reaction on <"fir", location>,
	// wait, and halt when it fires.
	ag, err := nw.Inject(`
		     pushn fir
		     pusht LOCATION
		     pushc 2
		     pushcl FIRE
		     regrxn
		     wait
		FIRE halt
	`, mote)
	if err != nil {
		t.Fatal(err)
	}
	settled, err := ag.Wait(func(a *agilla.Agent) bool { return a.State() == agilla.AgentWaiting }, time.Minute)
	if err != nil || !settled {
		t.Fatalf("tracker never reached wait: %v %v", settled, err)
	}

	fired := nw.Events(agilla.OfKind(agilla.EventReactionFired))
	if err := nw.Space(mote).Out(agilla.T(agilla.Str("fir"), agilla.LocV(agilla.Loc(4, 4)))); err != nil {
		t.Fatal(err)
	}
	if done, err := ag.WaitDone(time.Minute); err != nil || !done {
		t.Fatalf("reaction did not wake the agent: %v %v", done, err)
	}
	events := drainEvents(nw, fired)
	if len(events) != 1 {
		t.Fatalf("reaction events = %d, want 1: %v", len(events), events)
	}
	rf := events[0].(agilla.ReactionFired)
	if rf.AgentID != ag.ID() || rf.Node != mote || rf.Tuple.Fields[0].S != "fir" {
		t.Fatalf("reaction event = %+v", rf)
	}
}

func TestEventsAfterCloseAreDropped(t *testing.T) {
	nw := reliableGrid(t, 2, 1)
	ch := nw.Events()
	nw.Close()
	// Subscribing on a closed network yields a closed channel.
	if _, open := <-nw.Events(); open {
		t.Error("post-Close subscription delivered an event")
	}
	// The network stays usable; events after Close go nowhere.
	if err := nw.Space(agilla.Loc(1, 1)).Out(agilla.T(agilla.Int(1))); err != nil {
		t.Fatal(err)
	}
	if e, open := <-ch; open {
		t.Errorf("event %v delivered after Close", e)
	}
}

// TestEnumStrings pins the readable forms used by event logs and test
// failures.
func TestEnumStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{agilla.MigInject.String(), "inject"},
		{agilla.MigStrongMove.String(), "smove"},
		{agilla.MigWeakClone.String(), "wclone"},
		{agilla.RemoteOut.String(), "rout"},
		{agilla.RemoteInp.String(), "rinp"},
		{agilla.RemoteRdp.String(), "rrdp"},
		{agilla.EventReactionFired.String(), "reaction-fired"},
		{agilla.EventReplicaSynced.String(), "replica-synced"},
		{agilla.EventTupleRecovered.String(), "tuple-recovered"},
		{agilla.AgentReady.String(), "ready"},
		{agilla.AgentWaiting.String(), "waiting"},
		{agilla.AgentDead.String(), "dead"},
		{agilla.SensorTemperature.String(), "temperature"},
		{agilla.SensorSmoke.String(), "smoke"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
	if op, ok := agilla.OpcodeByName("smove"); !ok || op.String() != "smove" {
		t.Errorf("OpcodeByName round trip = %v, %v", op, ok)
	}
	if _, ok := agilla.OpcodeByName("frobnicate"); ok {
		t.Error("unknown mnemonic must not resolve")
	}
}

// TestEventStringsReadable spot-checks the variant String forms.
func TestEventStringsReadable(t *testing.T) {
	e := agilla.MigrationDone{
		At: time.Second, Node: agilla.Loc(1, 1), AgentID: 257,
		Mig: agilla.MigStrongMove, Dest: agilla.Loc(2, 1), OK: true,
	}
	if got := e.String(); got != "agent 257 smove (1,1) -> (2,1) ok" {
		t.Errorf("MigrationDone.String() = %q", got)
	}
	h := agilla.AgentHalted{At: time.Second, Node: agilla.Loc(2, 1), AgentID: 257}
	if got := h.String(); got != "agent 257 halted at (2,1)" {
		t.Errorf("AgentHalted.String() = %q", got)
	}
	rs := agilla.ReplicaSynced{
		At: time.Second, Node: agilla.Loc(2, 1), Peer: agilla.Loc(1, 1), Added: 3, Removed: 1,
	}
	if got := rs.String(); got != "node (2,1) synced replica from (1,1) (+3 -1)" {
		t.Errorf("ReplicaSynced.String() = %q", got)
	}
	tr := agilla.TupleRecovered{At: time.Second, Node: agilla.Loc(2, 1), Tuple: agilla.T(agilla.Str("sv"))}
	if got := tr.String(); got != `node (2,1) recovered tuple <"sv">` {
		t.Errorf("TupleRecovered.String() = %q", got)
	}
}
