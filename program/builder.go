package program

import (
	"errors"
	"fmt"

	"github.com/agilla-go/agilla/internal/tuplespace"
	"github.com/agilla-go/agilla/internal/vm"
)

// SensorType identifies a sensor on the mote's board (pushrt, Sense).
type SensorType = tuplespace.SensorType

// TypeCode names a matchable field type for template wildcards (PushT).
type TypeCode = tuplespace.TypeCode

// Field type codes for PushT and template construction.
const (
	TypeAny      = tuplespace.TypeAny
	TypeValue    = tuplespace.TypeValue
	TypeString   = tuplespace.TypeString
	TypeLocation = tuplespace.TypeLocation
	TypeReading  = tuplespace.TypeReading
	TypeAgentID  = tuplespace.TypeAgentID
)

// Builder composes an agent program instruction by instruction. Every
// method appends to the program and returns the builder, so programs
// read as chains:
//
//	p, err := program.New("greeter").
//		PushC(7).Putled().
//		PushN("hi").Loc().PushC(2).Out().
//		Halt().
//		Build()
//
// Method names follow the ISA mnemonics of Figure 7 (PushC ↔ pushc,
// JumpC ↔ rjumpc, ...). Tuple space methods accept optional typed fields:
// Out(Str("hi"), LocV(loc)) emits the pushes, the field count, and the
// operation, while Out() emits the bare instruction for operands already
// on the stack. On top sit combinators (If, Loop, ForEachNeighbor,
// React) that expand to the same label-and-jump patterns the paper's
// listings use.
//
// Errors (bad immediates, duplicate labels, unresolved jump targets,
// verifier findings) are collected and reported by Build, each positioned
// by build step and nearest label.
type Builder struct {
	name    string
	ins     []bins
	labels  map[string]int // label -> index of the instruction it precedes
	pending []string
	errs    []error
	auto    int
}

type refKind uint8

const (
	refNone refKind = iota
	refRel          // one signed offset byte, relative to this instruction
	refAbs          // two-byte absolute code address (PushAddr)
)

type bins struct {
	op      vm.Op
	args    [3]byte
	ref     string
	refKind refKind
	labels  []string // labels bound to this instruction
}

// New starts an empty program. The optional name is carried into the
// built Program for diagnostics.
func New(name ...string) *Builder {
	b := &Builder{labels: make(map[string]int)}
	if len(name) > 0 {
		b.name = name[0]
	}
	return b
}

// pos renders the position of instruction index i (or of the next
// instruction to be appended when i == len(b.ins)) for error messages.
func (b *Builder) pos(i int) string {
	at := fmt.Sprintf("step %d", i+1)
	if i < len(b.ins) {
		info, _ := vm.Lookup(b.ins[i].op)
		at += fmt.Sprintf(" (%s)", info.Name)
	}
	for j := min(i, len(b.ins)-1); j >= 0; j-- {
		if n := len(b.ins[j].labels); n > 0 {
			return fmt.Sprintf("%s after label %q", at, b.ins[j].labels[n-1])
		}
	}
	return at
}

func (b *Builder) failf(format string, args ...any) *Builder {
	b.errs = append(b.errs, fmt.Errorf("%s: %s", b.pos(len(b.ins)), fmt.Sprintf(format, args...)))
	return b
}

func (b *Builder) emit(op vm.Op, args ...byte) *Builder {
	in := bins{op: op}
	copy(in.args[:], args)
	if len(b.pending) > 0 {
		in.labels = b.pending
		for _, l := range b.pending {
			b.labels[l] = len(b.ins)
		}
		b.pending = nil
	}
	b.ins = append(b.ins, in)
	return b
}

func (b *Builder) emitRef(op vm.Op, ref string, kind refKind) *Builder {
	b.emit(op)
	b.ins[len(b.ins)-1].ref = ref
	b.ins[len(b.ins)-1].refKind = kind
	return b
}

// Label binds a name to the next instruction appended; Jump, JumpC, and
// PushAddr reference it. A label after the last instruction marks the
// end of the program and cannot be a jump target.
func (b *Builder) Label(name string) *Builder {
	if name == "" {
		return b.failf("empty label name")
	}
	if _, dup := b.labels[name]; dup {
		return b.failf("duplicate label %q", name)
	}
	for _, p := range b.pending {
		if p == name {
			return b.failf("duplicate label %q", name)
		}
	}
	b.pending = append(b.pending, name)
	return b
}

func (b *Builder) autoLabel(kind string) string {
	b.auto++
	return fmt.Sprintf("$%s%d", kind, b.auto)
}

// --- register, arithmetic, and comparison instructions ---

// Halt ends the agent; the middleware reclaims it.
func (b *Builder) Halt() *Builder { return b.emit(vm.OpHalt) }

// Loc pushes the hosting node's location.
func (b *Builder) Loc() *Builder { return b.emit(vm.OpLoc) }

// Aid pushes the agent's own ID.
func (b *Builder) Aid() *Builder { return b.emit(vm.OpAid) }

// Rand pushes a uniform value in [0, 32767).
func (b *Builder) Rand() *Builder { return b.emit(vm.OpRand) }

// Dup duplicates the top of stack.
func (b *Builder) Dup() *Builder { return b.emit(vm.OpDup) }

// Pop discards the top of stack.
func (b *Builder) Pop() *Builder { return b.emit(vm.OpPop) }

// Swap exchanges the top two stack values.
func (b *Builder) Swap() *Builder { return b.emit(vm.OpSwap) }

// Add pops two values and pushes their sum.
func (b *Builder) Add() *Builder { return b.emit(vm.OpAdd) }

// Sub pops t1 then t2 and pushes t2-t1.
func (b *Builder) Sub() *Builder { return b.emit(vm.OpSub) }

// And pops two values and pushes their bitwise and.
func (b *Builder) And() *Builder { return b.emit(vm.OpAnd) }

// Or pops two values and pushes their bitwise or.
func (b *Builder) Or() *Builder { return b.emit(vm.OpOr) }

// Not pops a value and pushes its bitwise complement.
func (b *Builder) Not() *Builder { return b.emit(vm.OpNot) }

// Inc pops a value and pushes it incremented by one.
func (b *Builder) Inc() *Builder { return b.emit(vm.OpInc) }

// Ceq pops two values and sets the condition register if they are equal.
func (b *Builder) Ceq() *Builder { return b.emit(vm.OpCeq) }

// Cneq sets the condition if the popped values differ.
func (b *Builder) Cneq() *Builder { return b.emit(vm.OpCneq) }

// Clt pops t1 then t2 and sets the condition if t1 < t2 — i.e. the value
// beneath the top exceeds the top, the Figure 13 threshold idiom:
// Sense(...).PushCL(200).Clt() sets the condition when the reading > 200.
func (b *Builder) Clt() *Builder { return b.emit(vm.OpClt) }

// Cgt pops t1 then t2 and sets the condition if t1 > t2.
func (b *Builder) Cgt() *Builder { return b.emit(vm.OpCgt) }

// Eq pops two values and pushes 1 if equal, else 0.
func (b *Builder) Eq() *Builder { return b.emit(vm.OpEq) }

// Neq pops two values and pushes 1 if they differ, else 0.
func (b *Builder) Neq() *Builder { return b.emit(vm.OpNeq) }

// Lt pops t1 then t2 and pushes 1 if t1 < t2, else 0.
func (b *Builder) Lt() *Builder { return b.emit(vm.OpLt) }

// Gt pops t1 then t2 and pushes 1 if t1 > t2, else 0.
func (b *Builder) Gt() *Builder { return b.emit(vm.OpGt) }

// Wait suspends the agent until one of its reactions fires; execution
// resumes at the reaction's entry point, never after the Wait.
func (b *Builder) Wait() *Builder { return b.emit(vm.OpWait) }

// Sleep pops a tick count (1/8 s units) and suspends for that long.
func (b *Builder) Sleep() *Builder { return b.emit(vm.OpSleep) }

// Putled pops a value and drives the mote's LEDs with it.
func (b *Builder) Putled() *Builder { return b.emit(vm.OpPutled) }

// Sense samples a sensor. With an argument it pushes the sensor code
// first — Sense(SensorTemperature) ≡ PushC(code).Sense(); with none it
// pops the code from the stack (the raw instruction).
func (b *Builder) Sense(sensor ...SensorType) *Builder {
	if len(sensor) > 1 {
		return b.failf("Sense takes at most one sensor")
	}
	if len(sensor) == 1 {
		b.PushC(int(sensor[0]))
	}
	return b.emit(vm.OpSense)
}

// --- control flow ---

// Jump unconditionally jumps to a label (rjump; targets within ±128
// bytes — use PushAddr + Jumps for longer hops).
func (b *Builder) Jump(label string) *Builder { return b.emitRef(vm.OpRjump, label, refRel) }

// JumpC jumps to a label if the condition register is set (rjumpc).
func (b *Builder) JumpC(label string) *Builder { return b.emitRef(vm.OpRjumpc, label, refRel) }

// Jumps pops an absolute code address and jumps to it.
func (b *Builder) Jumps() *Builder { return b.emit(vm.OpJumps) }

// --- heap ---

// GetVar pushes heap variable i (0 ≤ i < 12).
func (b *Builder) GetVar(i int) *Builder {
	if i < 0 || i >= vm.HeapSlots {
		return b.failf("heap index %d out of [0,%d)", i, vm.HeapSlots)
	}
	return b.emit(vm.OpGetvar, byte(i))
}

// SetVar pops the top of stack into heap variable i (0 ≤ i < 12).
func (b *Builder) SetVar(i int) *Builder {
	if i < 0 || i >= vm.HeapSlots {
		return b.failf("heap index %d out of [0,%d)", i, vm.HeapSlots)
	}
	return b.emit(vm.OpSetvar, byte(i))
}

// --- migration ---

// Smove pops a location and strong-moves there (code + full state).
func (b *Builder) Smove() *Builder { return b.emit(vm.OpSmove) }

// Wmove pops a location and weak-moves there (code only; the agent
// restarts from instruction 0 at the destination).
func (b *Builder) Wmove() *Builder { return b.emit(vm.OpWmove) }

// Sclone pops a location and strong-clones there; both copies continue.
func (b *Builder) Sclone() *Builder { return b.emit(vm.OpSclone) }

// Wclone pops a location and weak-clones there; the copy restarts at 0.
func (b *Builder) Wclone() *Builder { return b.emit(vm.OpWclone) }

// MoveTo is Smove with an immediate destination.
func (b *Builder) MoveTo(dest Location) *Builder { return b.PushLocV(dest).Smove() }

// CloneTo is Sclone with an immediate destination.
func (b *Builder) CloneTo(dest Location) *Builder { return b.PushLocV(dest).Sclone() }

// --- neighbor list ---

// Getnbr pops an index and pushes the neighbor location at that index;
// the condition register reports whether the index was valid.
func (b *Builder) Getnbr() *Builder { return b.emit(vm.OpGetnbr) }

// Numnbrs pushes the acquaintance-list length.
func (b *Builder) Numnbrs() *Builder { return b.emit(vm.OpNumnbrs) }

// Randnbr pushes a uniformly chosen neighbor location; the condition
// register reports whether any neighbor exists.
func (b *Builder) Randnbr() *Builder { return b.emit(vm.OpRandnbr) }

// --- push instructions ---

// PushC pushes a small constant (pushc; one unsigned immediate byte).
func (b *Builder) PushC(v int) *Builder {
	if v < 0 || v > 255 {
		return b.failf("PushC value %d out of [0,255]; use PushCL", v)
	}
	return b.emit(vm.OpPushc, byte(v))
}

// PushCL pushes a full 16-bit signed constant (pushcl).
func (b *Builder) PushCL(v int) *Builder {
	if v < -32768 || v > 32767 {
		return b.failf("PushCL value %d out of int16 range", v)
	}
	return b.emit(vm.OpPushcl, byte(uint16(int16(v))>>8), byte(uint16(int16(v))))
}

// PushAddr pushes the absolute code address of a label (a pushcl whose
// immediate is resolved at Build). Feed it to Regrxn or Jumps.
func (b *Builder) PushAddr(label string) *Builder { return b.emitRef(vm.OpPushcl, label, refAbs) }

// PushN pushes a short string name of 1-3 printable characters (pushn).
// Whitespace, quotes, ';', and '/' are rejected so every program's
// disassembly reassembles unchanged.
func (b *Builder) PushN(name string) *Builder {
	if len(name) == 0 || len(name) > tuplespace.MaxStringLen {
		return b.failf("PushN name %q must be 1-%d chars", name, tuplespace.MaxStringLen)
	}
	for i := 0; i < len(name); i++ {
		if !vm.ValidNameByte(name[i]) {
			return b.failf("PushN name %q: %q is not a printable name character", name, name[i])
		}
	}
	var buf [3]byte
	copy(buf[:], name)
	return b.emit(vm.OpPushn, buf[0], buf[1], buf[2])
}

// PushT pushes a type wildcard for template matching (pusht).
func (b *Builder) PushT(t TypeCode) *Builder {
	if t < 0 || t > 255 {
		return b.failf("PushT code %d out of [0,255]", t)
	}
	return b.emit(vm.OpPusht, byte(t))
}

// PushRT pushes the reading-type wildcard for a sensor (pushrt):
// PushRT(SensorTemperature) matches any temperature reading.
func (b *Builder) PushRT(s SensorType) *Builder {
	if s < 0 || s > 255 {
		return b.failf("PushRT sensor %d out of [0,255]", s)
	}
	return b.emit(vm.OpPushrt, byte(s))
}

// PushLoc pushes a location built from immediate coordinates (pushloc;
// each must fit a signed byte).
func (b *Builder) PushLoc(x, y int) *Builder {
	if x < -128 || x > 127 || y < -128 || y > 127 {
		return b.failf("PushLoc coordinates (%d,%d) out of [-128,127]", x, y)
	}
	return b.emit(vm.OpPushloc, byte(int8(x)), byte(int8(y)))
}

// PushLocV pushes a Location value (pushloc).
func (b *Builder) PushLocV(l Location) *Builder { return b.PushLoc(int(l.X), int(l.Y)) }

// Push emits the push instruction for a typed field value: PushN for
// strings, PushC/PushCL for integers, PushT for type wildcards, PushLocV
// for locations. Sensor readings and agent IDs have no immediate form.
func (b *Builder) Push(v Value) *Builder {
	switch v.Kind {
	case tuplespace.KindValue:
		if v.A >= 0 && v.A <= 255 {
			return b.PushC(int(v.A))
		}
		return b.PushCL(int(v.A))
	case tuplespace.KindString:
		return b.PushN(v.S)
	case tuplespace.KindType:
		return b.PushT(TypeCode(v.A))
	case tuplespace.KindLocation:
		return b.PushLoc(int(v.A), int(v.B))
	default:
		return b.failf("cannot push a %v field as an immediate", v.Kind)
	}
}

// pushFields emits pushes for the fields and their count; with no fields
// it emits nothing (the operands are already on the stack).
func (b *Builder) pushFields(fields []Value) *Builder {
	if len(fields) == 0 {
		return b
	}
	for _, f := range fields {
		b.Push(f)
	}
	return b.PushC(len(fields))
}

// --- tuple space operations ---
//
// Each takes optional typed fields: Out(Str("hi"), LocV(l)) emits the
// field pushes and the count before the instruction; Out() emits the
// bare instruction for a tuple already assembled on the stack.

// Out inserts a tuple into the local tuple space.
func (b *Builder) Out(fields ...Value) *Builder { return b.pushFields(fields).emit(vm.OpOut) }

// Inp removes the first matching tuple (non-blocking probe).
func (b *Builder) Inp(fields ...Value) *Builder { return b.pushFields(fields).emit(vm.OpInp) }

// Rdp copies the first matching tuple (non-blocking probe).
func (b *Builder) Rdp(fields ...Value) *Builder { return b.pushFields(fields).emit(vm.OpRdp) }

// In removes the first matching tuple, blocking until one exists.
func (b *Builder) In(fields ...Value) *Builder { return b.pushFields(fields).emit(vm.OpIn) }

// Rd copies the first matching tuple, blocking until one exists.
func (b *Builder) Rd(fields ...Value) *Builder { return b.pushFields(fields).emit(vm.OpRd) }

// Tcount pushes the number of local tuples matching the template.
func (b *Builder) Tcount(fields ...Value) *Builder { return b.pushFields(fields).emit(vm.OpTcount) }

// Rout inserts a tuple into a remote tuple space; the destination
// location must be on top of the stack (above the tuple). See RoutTo.
func (b *Builder) Rout() *Builder { return b.emit(vm.OpRout) }

// Rinp removes a matching tuple from a remote space; destination on top.
func (b *Builder) Rinp() *Builder { return b.emit(vm.OpRinp) }

// Rrdp copies a matching tuple from a remote space; destination on top.
func (b *Builder) Rrdp() *Builder { return b.emit(vm.OpRrdp) }

// RoutTo is Rout with an immediate destination and typed fields.
func (b *Builder) RoutTo(dest Location, fields ...Value) *Builder {
	return b.pushFields(fields).PushLocV(dest).Rout()
}

// RinpFrom is Rinp with an immediate destination and typed template fields.
func (b *Builder) RinpFrom(dest Location, fields ...Value) *Builder {
	return b.pushFields(fields).PushLocV(dest).Rinp()
}

// RrdpFrom is Rrdp with an immediate destination and typed template fields.
func (b *Builder) RrdpFrom(dest Location, fields ...Value) *Builder {
	return b.pushFields(fields).PushLocV(dest).Rrdp()
}

// Regrxn registers a reaction; the stack must hold the template fields,
// their count, and the entry address on top (see React for the idiom).
func (b *Builder) Regrxn() *Builder { return b.emit(vm.OpRegrxn) }

// Deregrxn deregisters the agent's reaction matching the template.
func (b *Builder) Deregrxn(fields ...Value) *Builder { return b.pushFields(fields).emit(vm.OpDeregrxn) }

// --- assembly ---

// Build resolves labels, assembles the bytecode, and runs the shared
// static verifier. Every collected error is reported, positioned by
// build step and nearest label.
func (b *Builder) Build() (*Program, error) {
	errs := append([]error(nil), b.errs...)
	for _, l := range b.pending {
		if _, dup := b.labels[l]; !dup {
			b.labels[l] = len(b.ins) // trailing label: points past the end
		}
	}
	if len(b.ins) == 0 && len(errs) == 0 {
		errs = append(errs, errors.New("empty program"))
	}

	// Lay out addresses.
	addr := make([]int, len(b.ins)+1)
	for i, in := range b.ins {
		info, _ := vm.Lookup(in.op)
		addr[i+1] = addr[i] + 1 + info.Operands
	}
	size := addr[len(b.ins)]

	// Resolve label references and emit bytes.
	code := make([]byte, 0, size)
	for i, in := range b.ins {
		info, _ := vm.Lookup(in.op)
		args := in.args
		if in.refKind != refNone {
			target, ok := b.labels[in.ref]
			if !ok {
				errs = append(errs, fmt.Errorf("%s: unresolved label %q", b.pos(i), in.ref))
				target = i // keep assembling so later errors still surface
			}
			switch in.refKind {
			case refRel:
				off := addr[target] - addr[i]
				if off < -128 || off > 127 {
					errs = append(errs, fmt.Errorf("%s: jump to %q spans %d bytes (max ±128); use PushAddr + Jumps", b.pos(i), in.ref, off))
					off = 0
				}
				args[0] = byte(int8(off))
			case refAbs:
				a := addr[target]
				if a > 32767 {
					errs = append(errs, fmt.Errorf("%s: address of %q (%d) exceeds the pushcl range", b.pos(i), in.ref, a))
					a = 0
				}
				args[0], args[1] = byte(uint16(a)>>8), byte(uint16(a))
			}
		}
		code = append(code, byte(in.op))
		code = append(code, args[:info.Operands]...)
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("%w: %w", ErrVerify, errors.Join(errs...))
	}

	// Shared static verification, findings positioned by build step.
	rep, err := vm.Verify(code)
	if err != nil {
		for _, ve := range rep.Errors {
			idx := 0
			for i := range b.ins {
				if addr[i] <= ve.PC {
					idx = i
				}
			}
			errs = append(errs, fmt.Errorf("%s: %s", b.pos(idx), ve.Msg))
		}
		return nil, fmt.Errorf("%w: %w", ErrVerify, errors.Join(errs...))
	}
	where := make(map[int]string, len(b.ins))
	for i := range b.ins {
		where[addr[i]] = b.pos(i)
	}
	return &Program{name: b.name, code: code, report: rep, where: where}, nil
}

// MustBuild is Build, panicking on error; for hard-coded programs.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
