package program

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/agilla-go/agilla/internal/vm"
)

// The public face of the static dataflow and energy analysis
// (internal/vm.Analyze). Where verification answers "can this program
// corrupt the VM?", analysis answers the two admission questions the
// paper's resource story needs: "is this agent well-typed?" (operand
// kinds through the stack and heap, reads of never-written heap slots,
// dead code, unreachable reactions) and "can this agent's energy draw be
// bounded?" (a static worst-case per-burst energy figure folded over the
// control-flow graph). Network.Launch consults the same analysis when an
// admission budget is configured (agilla.WithAdmissionBudget), and
// `agilla vet` prints it for .asm files, bytecode, and library agents.

// ErrAnalyze is wrapped by Analyze-level rejections: a program whose
// analysis produced error findings.
var ErrAnalyze = errors.New("program: analysis failed")

// Severity classifies a finding.
type Severity uint8

// Severities.
const (
	// SevWarning marks suspicious but survivable programs: dead code,
	// unreachable reactions, an unbounded energy draw.
	SevWarning Severity = iota
	// SevError marks guaranteed runtime deaths or reads of never-written
	// state.
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Finding is one analysis result, positioned by the authoring surface:
// source line for parsed programs, build step for built ones, program
// counter for byte-loaded ones.
type Finding struct {
	// PC is the byte address of the offending instruction; Pos the
	// human-readable position; Op the instruction's mnemonic.
	PC  int
	Pos string
	Op  string
	// Severity and Msg describe the defect.
	Severity Severity
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s): %s", f.Severity, f.Pos, f.Op, f.Msg)
}

// EnergyCosts configures the per-instruction energy figures Analyze
// folds over the control-flow graph, in integer nanojoules. The zero
// value selects the MICA2 calibration the deployment energy model
// defaults to (agilla.WithEnergy's DefaultEnergyModel).
type EnergyCosts struct {
	// InstrNJ is charged per executed instruction; SenseNJ per sensor
	// sample; SendNJ per transmitted frame plus SendByteNJ per payload
	// byte (migrations carry the code; remote operations a template).
	InstrNJ    uint64
	SendNJ     uint64
	SendByteNJ uint64
	SenseNJ    uint64
}

func (c EnergyCosts) vm() vm.EnergyCosts {
	if c == (EnergyCosts{}) {
		return vm.DefaultEnergyCosts()
	}
	return vm.EnergyCosts{InstrNJ: c.InstrNJ, SendNJ: c.SendNJ, SendByteNJ: c.SendByteNJ, SenseNJ: c.SenseNJ}
}

// AnalysisReport is the result of analyzing one program.
type AnalysisReport struct {
	// Findings holds every dataflow finding, most severe first, then by
	// position.
	Findings []Finding

	// EnergyBoundNJ is the worst-case energy, in nanojoules, any single
	// wakeful burst (the instructions run between two yield points:
	// sleep, wait, migration, a remote operation, or a blocking read)
	// can draw. Valid when EnergyUnbounded is false.
	EnergyBoundNJ uint64
	// EnergyUnbounded reports that no finite per-burst bound exists —
	// some loop never yields, or dynamic control flow defeats the
	// analysis; UnboundedPos locates the cause.
	EnergyUnbounded bool
	UnboundedPos    string

	// BurstEntries lists the byte addresses where a wakeful burst can
	// begin: program start, reaction entries, yield continuations, and
	// blocking-read retry points.
	BurstEntries []int

	// HeapWritten and HeapRead are bitmasks of the heap slots some
	// reachable instruction writes / reads.
	HeapWritten, HeapRead uint16

	// MaxStackDepth and MayOverflow restate the verifier's stack
	// analysis for one-stop admission decisions.
	MaxStackDepth int
	MayOverflow   bool
}

// EnergyBoundJ is the per-burst bound in joules.
func (r AnalysisReport) EnergyBoundJ() float64 { return float64(r.EnergyBoundNJ) / 1e9 }

// HasErrors reports whether any SevError finding exists.
func (r AnalysisReport) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Severity == SevError {
			return true
		}
	}
	return false
}

// Err joins the SevError findings, wrapped in ErrAnalyze; nil if the
// program is admissible.
func (r AnalysisReport) Err() error {
	var errs []error
	for _, f := range r.Findings {
		if f.Severity == SevError {
			errs = append(errs, errors.New(f.String()))
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrAnalyze, errors.Join(errs...))
}

// String renders the report the way `agilla vet` prints it: the energy
// and stack summary, then one line per finding.
func (r AnalysisReport) String() string {
	var sb strings.Builder
	if r.EnergyUnbounded {
		fmt.Fprintf(&sb, "energy: unbounded (%s)", r.UnboundedPos)
	} else {
		fmt.Fprintf(&sb, "energy: ≤%.1f µJ per burst (%d entries)", float64(r.EnergyBoundNJ)/1e3, len(r.BurstEntries))
	}
	fmt.Fprintf(&sb, ", stack ≤%d", r.MaxStackDepth)
	if r.MayOverflow {
		sb.WriteString(" (may overflow on data-dependent paths)")
	}
	for _, f := range r.Findings {
		sb.WriteByte('\n')
		sb.WriteString(f.String())
	}
	return sb.String()
}

// Analyze runs the static dataflow and energy analysis on a verified
// program with the default MICA2 energy calibration. Use
// AnalyzeWithCosts to match a deployment's configured energy model.
func Analyze(p *Program) AnalysisReport {
	return AnalyzeWithCosts(p, EnergyCosts{})
}

// AnalyzeWithCosts is Analyze with explicit energy figures (typically
// the deployment's model, as Launch admission uses).
func AnalyzeWithCosts(p *Program, costs EnergyCosts) AnalysisReport {
	// The program already passed Verify, so the analysis cannot fail at
	// the verification layer; error findings are carried in the report.
	vrep, _ := vm.Analyze(p.code, costs.vm())

	rep := AnalysisReport{
		EnergyBoundNJ:   vrep.EnergyBoundNJ,
		EnergyUnbounded: vrep.EnergyUnbounded,
		BurstEntries:    vrep.BurstEntries,
		HeapWritten:     vrep.HeapWritten,
		HeapRead:        vrep.HeapRead,
		MaxStackDepth:   vrep.MaxStackDepth,
		MayOverflow:     vrep.MayOverflow,
	}
	if vrep.EnergyUnbounded {
		rep.UnboundedPos = p.pos(vrep.UnboundedPC)
	}
	for _, f := range vrep.Findings {
		rep.Findings = append(rep.Findings, Finding{
			PC:       f.PC,
			Pos:      p.pos(f.PC),
			Op:       f.Op.String(),
			Severity: Severity(f.Severity),
			Msg:      f.Msg,
		})
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		return a.PC < b.PC
	})
	return rep
}

// Analyze runs the static dataflow and energy analysis on the program
// with the default energy calibration; see the package-level Analyze.
func (p *Program) Analyze() AnalysisReport { return Analyze(p) }
