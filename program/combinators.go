package program

// High-level combinators. Each expands to the same label-and-jump
// patterns the paper's listings use (Figures 2 and 13, and the
// FIRETRACKER body), so combinator-built programs look exactly like
// hand-written ones at the bytecode level. Generated labels start with
// '$' and cannot collide with user labels (Label rejects nothing, but
// the '$' namespace is reserved by convention).

// If runs then when the condition register is set and falls through
// otherwise:
//
//	rjumpc $then; rjump $end; $then: <then>; $end:
//
// Set the condition first with a comparison (Ceq/Clt/...), a probe
// (Rdp/Inp/Out), Getnbr, Sense, or a migration.
func (b *Builder) If(then func(*Builder)) *Builder {
	lThen, lEnd := b.autoLabel("then"), b.autoLabel("end")
	b.JumpC(lThen).Jump(lEnd).Label(lThen)
	then(b)
	return b.Label(lEnd)
}

// IfElse runs then when the condition register is set and els otherwise:
//
//	rjumpc $then; <els>; rjump $end; $then: <then>; $end:
//
// The else branch falls through first, matching the paper's idiom
// (FIRETRACKER's rjumpc TPOP over the presence-marking block).
func (b *Builder) IfElse(then, els func(*Builder)) *Builder {
	lThen, lEnd := b.autoLabel("then"), b.autoLabel("end")
	b.JumpC(lThen)
	els(b)
	b.Jump(lEnd).Label(lThen)
	then(b)
	return b.Label(lEnd)
}

// Loop repeats body forever:
//
//	$loop: <body>; rjump $loop
//
// Break out with an explicit Jump/JumpC to a label outside, or end an
// iteration with Halt or a weak migration.
func (b *Builder) Loop(body func(*Builder)) *Builder {
	l := b.autoLabel("loop")
	b.Label(l)
	body(b)
	return b.Jump(l)
}

// ForEachNeighbor runs body once per acquaintance-list entry, using heap
// variable slot as the index (the FIRETRACKER scan pattern):
//
//	pushc 0; setvar slot
//	$loop: getvar slot; getnbr; rjumpc $body; rjump $end
//	$body: <body>; getvar slot; inc; setvar slot; rjump $loop
//	$end:  pop
//
// body runs with the neighbor's location on top of the stack and must
// consume it (SetVar it, migrate to it, or Pop it). The trailing pop
// discards the invalid location getnbr pushes when the list is
// exhausted.
func (b *Builder) ForEachNeighbor(slot int, body func(*Builder)) *Builder {
	lLoop, lBody, lEnd := b.autoLabel("loop"), b.autoLabel("body"), b.autoLabel("end")
	b.PushC(0).SetVar(slot)
	b.Label(lLoop).GetVar(slot).Getnbr()
	b.JumpC(lBody).Jump(lEnd)
	b.Label(lBody)
	body(b)
	b.GetVar(slot).Inc().SetVar(slot).Jump(lLoop)
	return b.Label(lEnd).Pop()
}

// React registers a reaction on the template and waits for it to fire —
// the Figure 2 prologue:
//
//	<push template fields>; pushc n; pushcl $body; regrxn; wait
//	$body: <body>
//
// When a matching tuple is inserted, the middleware resumes the agent at
// $body with the interrupted PC, the matched tuple's fields, and their
// count pushed on the stack; body must consume them (the count first).
// A reaction stays registered and can fire again, so body should leave
// the stack as it found it before looping or waiting again.
func (b *Builder) React(tmpl Template, body func(*Builder)) *Builder {
	l := b.autoLabel("rxn")
	for _, f := range tmpl.Fields {
		b.Push(f)
	}
	b.PushC(len(tmpl.Fields)).PushAddr(l).Regrxn().Wait()
	b.Label(l)
	body(b)
	return b
}
