package program

import (
	"strings"
	"testing"
)

// Golden analysis reports for every library agent. The paper's agents
// are the acceptance bar for the analyzer: all must be finding-free
// with a finite per-burst energy bound. The pinned numbers double as a
// drift alarm — an ISA cost change or analyzer regression shows up as a
// diff here, not as a silent admission-policy shift.
func TestAnalyzeLibraryGolden(t *testing.T) {
	type golden struct {
		boundNJ uint64
		entries int
		heapW   uint16
		heapR   uint16
		stack   int
		mayOvf  bool
	}
	want := map[string]golden{
		"blink":           {boundNJ: 16800, entries: 1, stack: 3},
		"smove-roundtrip": {boundNJ: 2973800, entries: 3, stack: 1},
		"rout":            {boundNJ: 1805600, entries: 2, stack: 3},
		"fire-detector":   {boundNJ: 1837400, entries: 3, stack: 4},
		"fire-tracker":    {boundNJ: 4397200, entries: 6, heapW: 0xc00, heapR: 0xc00, stack: 16, mayOvf: true},
		"fire-sentinel":   {boundNJ: 1837400, entries: 4, stack: 16, mayOvf: true},
	}
	seen := make(map[string]bool)
	for _, e := range Library() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			g, ok := want[e.Name]
			if !ok {
				t.Fatalf("no golden entry for library agent %q — add one", e.Name)
			}
			seen[e.Name] = true
			rep := Analyze(e.Program)
			if len(rep.Findings) != 0 {
				t.Errorf("expected a clean report, got findings:\n%s", rep)
			}
			if rep.EnergyUnbounded {
				t.Fatalf("expected a finite energy bound, got unbounded at %s", rep.UnboundedPos)
			}
			if rep.EnergyBoundNJ != g.boundNJ {
				t.Errorf("EnergyBoundNJ = %d, want %d", rep.EnergyBoundNJ, g.boundNJ)
			}
			if len(rep.BurstEntries) != g.entries {
				t.Errorf("BurstEntries = %v, want %d entries", rep.BurstEntries, g.entries)
			}
			if rep.HeapWritten != g.heapW || rep.HeapRead != g.heapR {
				t.Errorf("heap masks = %#x/%#x, want %#x/%#x", rep.HeapWritten, rep.HeapRead, g.heapW, g.heapR)
			}
			if rep.MaxStackDepth != g.stack || rep.MayOverflow != g.mayOvf {
				t.Errorf("stack = %d overflow=%v, want %d overflow=%v", rep.MaxStackDepth, rep.MayOverflow, g.stack, g.mayOvf)
			}
			if rep.Err() != nil {
				t.Errorf("Err() = %v, want nil", rep.Err())
			}
		})
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("golden entry %q has no library agent — remove it", name)
		}
	}
}

// Findings on parsed programs point at source lines.
func TestAnalyzeParsedPositions(t *testing.T) {
	p := MustParse(`
		pushc 5
		smove
		halt
	`)
	rep := Analyze(p)
	if !rep.HasErrors() {
		t.Fatalf("expected a type-mismatch error finding, got:\n%s", rep)
	}
	f := rep.Findings[0]
	if f.Pos != "line 3" {
		t.Errorf("finding positioned at %q, want \"line 3\"", f.Pos)
	}
	if !strings.Contains(f.Msg, "type mismatch") {
		t.Errorf("finding message %q, want a type mismatch", f.Msg)
	}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("Err() = %v, want source-positioned error", err)
	}
}

// Findings on built programs point at builder steps.
func TestAnalyzeBuiltPositions(t *testing.T) {
	p, err := New().PushC(5).Smove().Halt().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rep := Analyze(p)
	if !rep.HasErrors() {
		t.Fatalf("expected a type-mismatch error finding, got:\n%s", rep)
	}
	if f := rep.Findings[0]; !strings.Contains(f.Pos, "step 2") {
		t.Errorf("finding positioned at %q, want a \"step 2\" position", f.Pos)
	}
}

// Findings on byte-loaded programs fall back to program counters.
func TestAnalyzeBytesPositions(t *testing.T) {
	src := MustParse("pushc 5\nsmove\nhalt\n")
	p, err := FromBytes(src.Bytes())
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	rep := Analyze(p)
	if !rep.HasErrors() {
		t.Fatalf("expected a type-mismatch error finding, got:\n%s", rep)
	}
	if f := rep.Findings[0]; !strings.HasPrefix(f.Pos, "pc=") {
		t.Errorf("finding positioned at %q, want a pc= fallback", f.Pos)
	}
}

// AnalyzeWithCosts scales the bound with the supplied calibration, and
// the zero value means the default table.
func TestAnalyzeWithCosts(t *testing.T) {
	p := MustParse("pushc 1\npop\nhalt\n")
	if got, want := AnalyzeWithCosts(p, EnergyCosts{}).EnergyBoundNJ, Analyze(p).EnergyBoundNJ; got != want {
		t.Errorf("zero-value costs bound = %d, default bound = %d", got, want)
	}
	rep := AnalyzeWithCosts(p, EnergyCosts{InstrNJ: 10, SendNJ: 1, SendByteNJ: 1, SenseNJ: 1})
	if rep.EnergyBoundNJ != 30 {
		t.Errorf("bound with 10 nJ/instr = %d, want 30", rep.EnergyBoundNJ)
	}
}
