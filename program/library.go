package program

import (
	"github.com/agilla-go/agilla/internal/agents"
	"github.com/agilla-go/agilla/internal/topology"
	"github.com/agilla-go/agilla/internal/tuplespace"
)

// Re-exported tuple field constructors, so builder chains read without
// importing a second package.
var (
	// Int constructs an integer field.
	Int = tuplespace.Int
	// Str constructs a short string field (at most 3 characters).
	Str = tuplespace.Str
	// LocV constructs a location field.
	LocV = tuplespace.LocV
	// TypeV constructs a type-wildcard field for templates.
	TypeV = tuplespace.TypeV
	// Tmpl builds a template from fields.
	Tmpl = tuplespace.Tmpl
)

// Sensor types carried by the default simulated board.
const (
	SensorTemperature = tuplespace.SensorTemperature
	SensorPhoto       = tuplespace.SensorPhoto
	SensorSound       = tuplespace.SensorSound
	SensorSmoke       = tuplespace.SensorSmoke
)

// Entry is one canned program in the Library: a paper agent available
// both as its assembly listing and as the byte-identical builder-made
// Program.
type Entry struct {
	// Name identifies the entry (Get looks it up).
	Name string
	// Figure cites the paper listing the agent reproduces, if any.
	Figure string
	// Description says what the agent does.
	Description string
	// Source is the assembly listing (the golden reference; tests assert
	// Program compiles byte-identical to it).
	Source string
	// Program is the agent built with the Builder.
	Program *Program
}

// Library returns the paper's canonical agents, instantiated with their
// default parameters (the Figure 8 benchmark target (5,1), alerts
// notified to the base station at (0,0), the Figure 13 ten-minute
// sampling period). For other parameters call the constructors —
// SmoveRoundTrip, RoutAgent, FireDetector, FireTracker, FireSentinel,
// Blink — directly.
func Library() []Entry {
	target := topology.Loc(5, 1)
	base := topology.Loc(0, 0)
	return []Entry{
		{
			Name:        "blink",
			Description: "quickstart greeter: light the LEDs, drop <\"hi\", location>, halt",
			Source:      agents.BlinkSrc(),
			Program:     Blink(),
		},
		{
			Name:        "smove-roundtrip",
			Figure:      "Figure 8",
			Description: "strong-move to the target mote and back home, then halt",
			Source:      agents.SmoveRoundTripSrc(target, base),
			Program:     SmoveRoundTrip(target, base),
		},
		{
			Name:        "rout",
			Figure:      "Figure 8",
			Description: "place the tuple <1> in the target mote's tuple space remotely",
			Source:      agents.RoutSrc(target),
			Program:     RoutAgent(target),
		},
		{
			Name:        "fire-detector",
			Figure:      "Figure 13",
			Description: "sample the temperature every 10 minutes; past 200, rout a fire alert and halt",
			Source:      agents.FireDetectorSrc(base, 4800),
			Program:     FireDetector(base, 4800),
		},
		{
			Name:        "fire-tracker",
			Figure:      "Figure 2",
			Description: "wait for a fire alert, clone to the fire, and keep a tracker on every hot neighbor",
			Source:      agents.FireTrackerSrc(),
			Program:     FireTracker(),
		},
		{
			Name:        "fire-sentinel",
			Figure:      "§5",
			Description: "looping fire-detector: keep re-alerting every period while the fire burns",
			Source:      agents.FireSentinelSrc(base, 16),
			Program:     FireSentinel(base, 16),
		},
	}
}

// Get returns the library entry with the given name.
func Get(name string) (Entry, bool) {
	for _, e := range Library() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Blink is the quickstart agent: flash the LEDs and leave a greeting
// tuple <"hi", location>.
func Blink() *Program {
	return New("blink").
		PushC(7).Putled().
		PushN("hi").Loc().PushC(2).Out().
		Halt().
		MustBuild()
}

// SmoveRoundTrip is Figure 8's smove benchmark agent generalized to any
// target: strong-move to target, strong-move back home, halt. Panics if
// a coordinate does not fit pushloc's signed-byte range.
func SmoveRoundTrip(target, home Location) *Program {
	return New("smove-roundtrip").
		PushLocV(target).Smove().
		PushLocV(home).Smove().
		Halt().
		MustBuild()
}

// RoutAgent is Figure 8's rout benchmark agent: place the tuple <1> in
// the target node's tuple space over the air, then halt.
func RoutAgent(target Location) *Program {
	return New("rout").
		RoutTo(target, Int(1)).
		Halt().
		MustBuild()
}

// FireDetector is Figure 13: sample the temperature every sleepTicks
// (1/8 s units); past the threshold of 200, rout a <"fir", location>
// alert to notify and halt. Panics if sleepTicks exceeds int16.
func FireDetector(notify Location, sleepTicks int) *Program {
	return New("fire-detector").
		Label("BEGIN").
		Sense(SensorTemperature).
		PushCL(200).Clt().
		JumpC("FIRE").
		PushCL(sleepTicks).Sleep().
		Jump("BEGIN").
		Label("FIRE").
		PushN("fir").Loc().PushC(2).
		PushLocV(notify).Rout().
		Halt().
		MustBuild()
}

// FireTracker is the FIRETRACKER agent: the Figure 2 prologue (React on
// <"fir", location>) followed by the tracking body — every copy marks
// its presence, scans its neighbors, and strong-clones onto any hot
// neighbor that lacks a tracker, re-scanning every 2 s. Heap variables
// 10 and 11 are used by the body.
func FireTracker() *Program {
	return New("fire-tracker").
		React(Tmpl(Str("fir"), TypeV(TypeLocation)), func(b *Builder) {
			b.Pop(). // field count pushed by the firing
					Sclone(). // strong clone to the node that detected fire
					Pop().    // the "fir" string field of the alert
					Pop()     // the saved PC; the FIRE path must leave the
				// stack as it found it so re-alerts can fire again
			b.Label("TBODY").
				Rdp(Str("trk")). // presence already marked here?
				IfElse(
					func(b *Builder) { b.Pop().Pop() },     // drop the rdp result
					func(b *Builder) { b.Out(Str("trk")) }, // mark presence
				).
				PushC(0).SetVar(10) // neighbor index
			b.Label("TLOOP").
				GetVar(10).Getnbr().
				JumpC("TCHK").Jump("TSLEEP") // exhausted: sleep and rescan
			b.Label("TCHK").
				SetVar(11).                              // remember the neighbor
				PushN("trk").PushC(1).GetVar(11).Rrdp(). // tracker already there?
				JumpC("TGOT").
				Sense(SensorTemperature). // are the flames near us?
				PushCL(80).Clt().
				JumpC("TCLONE").Jump("TNEXT")
			b.Label("TGOT").Pop().Pop().Jump("TNEXT")
			b.Label("TCLONE").GetVar(11).Sclone() // recruit the neighbor
			b.Label("TNEXT").GetVar(10).Inc().SetVar(10).Jump("TLOOP")
			b.Label("TSLEEP").PushC(16).Sleep().Jump("TBODY")
		}).
		MustBuild()
}

// FireSentinel is the case study's looping variant of Figure 13: where
// the paper's listing halts after one alert, the sentinel keeps
// monitoring, re-alerting every 4×sleepTicks while the fire burns.
// Panics if a sleep period exceeds int16.
func FireSentinel(notify Location, sleepTicks int) *Program {
	return New("fire-sentinel").
		Label("BEGIN").
		Sense(SensorTemperature).
		PushCL(200).Clt().
		JumpC("FIRE").
		PushCL(sleepTicks).Sleep().
		Jump("BEGIN").
		Label("FIRE").
		PushN("fir").Loc().PushC(2).
		PushLocV(notify).Rout().
		PushCL(sleepTicks * 4).Sleep().
		Jump("BEGIN").
		MustBuild()
}
