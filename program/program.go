// Package program is the public authoring surface for Agilla agents: the
// typed way to build, check, inspect, and ship the stack-machine programs
// that Network.Launch injects into a deployment.
//
// The paper's core contribution (§3.3–§3.4, Figure 7) is the agent
// language itself — a stack ISA with tuple-space and migration
// instructions. This package exposes all three authoring forms and makes
// them converge on one verified Program value:
//
//   - New builds a Program instruction by instruction through a fluent,
//     typed Builder with high-level combinators (If, Loop,
//     ForEachNeighbor, React).
//   - Parse assembles the textual dialect of Figures 2, 8, and 13.
//   - FromBytes adopts raw bytecode (a received migration payload, a file
//     written by `agilla asm`).
//
// Every form runs the shared static verifier (internal/vm.Verify): label
// resolution, jump-target bounds, heap-index ranges, and a worst-case
// stack-depth analysis, with source positions (line, label, or builder
// step) in every error. A Program that exists has passed verification.
//
// Library returns the paper's canonical agents (Figures 2, 8, 13) as
// ready-made entries, each built with the Builder and byte-identical to
// its assembly listing.
package program

import (
	"errors"
	"fmt"

	"github.com/agilla-go/agilla/internal/asm"
	"github.com/agilla-go/agilla/internal/topology"
	"github.com/agilla-go/agilla/internal/tuplespace"
	"github.com/agilla-go/agilla/internal/vm"
)

// Location is a node address (alias of the network-wide location type).
type Location = topology.Location

// Value is one typed datum: a tuple field or a VM stack slot.
type Value = tuplespace.Value

// Template matches tuples by per-field equality with type wildcards.
type Template = tuplespace.Template

// ErrVerify is wrapped by every static-verification failure, whichever
// authoring form produced it.
var ErrVerify = errors.New("program: verification failed")

// Program is a verified, immutable agent program. The zero value is not
// useful; obtain one from a Builder, Parse, FromBytes, or Library.
type Program struct {
	name   string
	code   []byte
	source string
	report vm.VerifyReport
	// where maps instruction byte addresses to human positions ("line
	// 12" for parsed programs, "step 3 (out) after label L" for built
	// ones), so Analyze findings point at the authoring surface the way
	// verification errors do.
	where map[int]string
}

// pos renders the authoring position of the instruction at pc, falling
// back to the raw program counter for byte-loaded programs.
func (p *Program) pos(pc int) string {
	if s, ok := p.where[pc]; ok {
		return s
	}
	return fmt.Sprintf("pc=%d", pc)
}

// Parse assembles Agilla assembly source (the dialect of the paper's
// Figures 2, 8, and 13) and verifies it. Errors carry the source line
// and offending token.
func Parse(src string) (*Program, error) {
	code, rep, pcLines, err := asm.AssembleWithLines(src)
	if err != nil {
		return nil, err
	}
	where := make(map[int]string, len(pcLines))
	for pc, line := range pcLines {
		where[pc] = fmt.Sprintf("line %d", line)
	}
	return &Program{code: code, source: src, report: rep, where: where}, nil
}

// MustParse is Parse, panicking on error; for hard-coded programs.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// FromBytes verifies raw bytecode and wraps it as a Program. Errors are
// positioned by program counter.
func FromBytes(code []byte) (*Program, error) {
	rep, err := vm.Verify(code)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrVerify, err)
	}
	return &Program{code: append([]byte(nil), code...), report: rep}, nil
}

// Disassemble renders bytecode as assembly text without constructing a
// Program; it fails only if the bytes do not decode.
func Disassemble(code []byte) (string, error) { return asm.Disassemble(code) }

// WithName returns a copy of the program carrying a diagnostic name.
func (p *Program) WithName(name string) *Program {
	q := *p
	q.name = name
	return &q
}

// Name returns the diagnostic name, or "" if none was set.
func (p *Program) Name() string { return p.name }

// Bytes returns a copy of the program's bytecode — the exact bytes a
// migrating agent carries.
func (p *Program) Bytes() []byte { return append([]byte(nil), p.code...) }

// Len returns the encoded size in bytes (what counts against a mote's
// instruction memory).
func (p *Program) Len() int { return len(p.code) }

// Instructions returns the instruction count.
func (p *Program) Instructions() int { return p.report.Instructions }

// MaxStackDepth returns the verifier's worst-case operand stack depth
// bound (capped at the architectural limit).
func (p *Program) MaxStackDepth() int { return p.report.MaxStackDepth }

// Source returns the assembly source the program was parsed from, or ""
// for built or byte-loaded programs (use Disassemble for a listing).
func (p *Program) Source() string { return p.source }

// Disassemble renders the program as assembly text, one instruction per
// line with byte addresses; the text reassembles to identical bytes.
func (p *Program) Disassemble() string {
	text, err := asm.Disassemble(p.code)
	if err != nil {
		// Unreachable: a Program's bytes decoded during verification.
		return fmt.Sprintf("// disassembly failed: %v", err)
	}
	return text
}

func (p *Program) String() string {
	name := p.name
	if name == "" {
		name = "program"
	}
	return fmt.Sprintf("%s (%d bytes, %d instructions, stack ≤%d)",
		name, len(p.code), p.report.Instructions, p.report.MaxStackDepth)
}
