package program

import (
	"errors"
	"strings"
	"testing"

	"github.com/agilla-go/agilla/internal/asm"
	"github.com/agilla-go/agilla/internal/topology"
	"github.com/agilla-go/agilla/internal/vm"
)

// TestLibraryGolden is the acceptance check for the builder: every
// library program built with the typed API must be byte-identical to its
// assembled source listing.
func TestLibraryGolden(t *testing.T) {
	entries := Library()
	if len(entries) < 5 {
		t.Fatalf("library has only %d entries", len(entries))
	}
	for _, e := range entries {
		t.Run(e.Name, func(t *testing.T) {
			want := asm.MustAssemble(e.Source)
			got := e.Program.Bytes()
			if string(got) != string(want) {
				t.Errorf("builder bytes differ from assembled source\nasm:     %v\nbuilder: %v\n\nbuilder disassembly:\n%s",
					want, got, e.Program.Disassemble())
			}
		})
	}
}

func TestLibraryGet(t *testing.T) {
	e, ok := Get("fire-tracker")
	if !ok || e.Figure != "Figure 2" {
		t.Fatalf("Get(fire-tracker) = %+v, %v", e, ok)
	}
	if _, ok := Get("no-such-agent"); ok {
		t.Error("Get must miss on unknown names")
	}
}

func TestThreeAuthoringFormsConverge(t *testing.T) {
	built := New("greeter").
		PushC(7).Putled().
		PushN("hi").Loc().PushC(2).Out().
		Halt().
		MustBuild()

	parsed, err := Parse(`
		pushc 7
		putled
		pushn hi
		loc
		pushc 2
		out
		halt
	`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	loaded, err := FromBytes(parsed.Bytes())
	if err != nil {
		t.Fatalf("from bytes: %v", err)
	}

	if string(built.Bytes()) != string(parsed.Bytes()) {
		t.Errorf("builder %v != parsed %v", built.Bytes(), parsed.Bytes())
	}
	if string(loaded.Bytes()) != string(parsed.Bytes()) {
		t.Errorf("loaded %v != parsed %v", loaded.Bytes(), parsed.Bytes())
	}
}

func TestProgramAccessors(t *testing.T) {
	p := MustParse("pushc 1\npushc 2\nadd\npop\nhalt").WithName("sum")
	if p.Name() != "sum" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Len() != 7 {
		t.Errorf("Len = %d, want 7", p.Len())
	}
	if p.Instructions() != 5 {
		t.Errorf("Instructions = %d, want 5", p.Instructions())
	}
	if p.MaxStackDepth() != 2 {
		t.Errorf("MaxStackDepth = %d, want 2", p.MaxStackDepth())
	}
	if p.Source() == "" {
		t.Error("Source lost")
	}
	if s := p.String(); !strings.Contains(s, "sum") || !strings.Contains(s, "7 bytes") {
		t.Errorf("String = %q", s)
	}
	// Bytes returns a copy: mutating it must not corrupt the program.
	b := p.Bytes()
	b[0] = 0xee
	if _, err := FromBytes(p.Bytes()); err != nil {
		t.Errorf("program corrupted through Bytes: %v", err)
	}
}

func TestDisassembleReassembles(t *testing.T) {
	for _, e := range Library() {
		code, err := asm.Assemble(e.Program.Disassemble())
		if err != nil {
			t.Fatalf("%s: disassembly does not reassemble: %v", e.Name, err)
		}
		if string(code) != string(e.Program.Bytes()) {
			t.Errorf("%s: round trip differs", e.Name)
		}
	}
}

// --- builder error positioning ---

func TestBuilderUnresolvedLabel(t *testing.T) {
	_, err := New().PushC(1).Label("TOP").Pop().JumpC("NOWHERE").Halt().Build()
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, ErrVerify) {
		t.Errorf("error does not wrap ErrVerify: %v", err)
	}
	for _, frag := range []string{`unresolved label "NOWHERE"`, "step 3", `after label "TOP"`} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

func TestBuilderHeapRange(t *testing.T) {
	_, err := New().PushC(1).SetVar(vm.HeapSlots).Halt().Build()
	if err == nil || !strings.Contains(err.Error(), "heap index 12 out of [0,12)") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "step 2") {
		t.Errorf("error %q missing position", err)
	}
}

func TestBuilderStackUnderflow(t *testing.T) {
	_, err := New().Pop().Halt().Build()
	if err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "step 1 (pop)") {
		t.Errorf("error %q missing position", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	_, err := New().Label("A").PushC(1).Label("A").Pop().Halt().Build()
	if err == nil || !strings.Contains(err.Error(), `duplicate label "A"`) {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderJumpTooFar(t *testing.T) {
	b := New().Label("TOP").Halt()
	for i := 0; i < 100; i++ {
		b.PushC(1).Pop()
	}
	_, err := b.Jump("TOP").Build()
	if err == nil || !strings.Contains(err.Error(), "use PushAddr + Jumps") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderBadImmediates(t *testing.T) {
	cases := map[string]*Builder{
		"pushc range": New().PushC(300).Halt(),
		"pushn long":  New().PushN("wxyz").Halt(),
		"pushn empty": New().PushN("").Halt(),
		"pushn space": New().PushN("a b").Pop().Halt(),
		"pushn slash": New().PushN("a/b").Pop().Halt(),
		"pushloc":     New().PushLoc(200, 0).Halt(),
		"pushcl":      New().PushCL(1 << 20).Halt(),
		"empty":       New(),
	}
	for name, b := range cases {
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestBuilderCollectsMultipleErrors(t *testing.T) {
	_, err := New().PushC(300).GetVar(99).Halt().Build()
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "PushC value 300") || !strings.Contains(err.Error(), "heap index 99") {
		t.Errorf("not all errors reported: %v", err)
	}
}

func TestFromBytesRejects(t *testing.T) {
	_, err := FromBytes([]byte{byte(vm.OpPop), byte(vm.OpHalt)})
	if err == nil || !errors.Is(err, ErrVerify) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "pc=0") {
		t.Errorf("error %q missing pc position", err)
	}
}

func TestFromBytesReportsAllFindings(t *testing.T) {
	// Both the bad heap index and the guaranteed underflow must surface.
	_, err := FromBytes([]byte{
		byte(vm.OpSetvar), vm.HeapSlots,
		byte(vm.OpHalt),
	})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "heap index") || !strings.Contains(err.Error(), "underflow") {
		t.Errorf("error %q does not report all findings", err)
	}
	var ve *vm.VerifyError
	if !errors.As(err, &ve) {
		t.Errorf("findings lost their typed pc positions: %v", err)
	}
}

func TestFromBytesRejectsUnprintableName(t *testing.T) {
	// A pushn name with a space disassembles ambiguously, so the
	// verifier must keep it out of a Program.
	_, err := FromBytes([]byte{byte(vm.OpPushn), 'a', ' ', 'b', byte(vm.OpPop), byte(vm.OpHalt)})
	if err == nil || !strings.Contains(err.Error(), "name character") {
		t.Fatalf("err = %v", err)
	}
	// Zero padding must appear only after the name.
	_, err = FromBytes([]byte{byte(vm.OpPushn), 'a', 0, 'b', byte(vm.OpPop), byte(vm.OpHalt)})
	if err == nil {
		t.Fatal("embedded NUL in a name must be rejected")
	}
}

// --- combinators ---

func TestIfShape(t *testing.T) {
	// If must run the body exactly when the condition is set.
	p := New().
		PushC(1).PushC(1).Ceq(). // condition := 1
		If(func(b *Builder) { b.PushC(42).Pop() }).
		Halt().
		MustBuild()
	// rjumpc +2? Shape: rjumpc $then(+4); rjump $end; $then: pushc 42; pop; $end: halt
	dis := p.Disassemble()
	for _, frag := range []string{"rjumpc 4", "rjump", "pushc 42"} {
		if !strings.Contains(dis, frag) {
			t.Errorf("disassembly missing %q:\n%s", frag, dis)
		}
	}
}

func TestIfElseMatchesPaperIdiom(t *testing.T) {
	// IfElse must compile to the exact FIRETRACKER presence-check shape.
	built := New().
		Rdp(Str("trk")).
		IfElse(
			func(b *Builder) { b.Pop().Pop() },
			func(b *Builder) { b.Out(Str("trk")) },
		).
		Halt().
		MustBuild()
	want := asm.MustAssemble(`
		      pushn trk
		      pushc 1
		      rdp
		      rjumpc TPOP
		      pushn trk
		      pushc 1
		      out
		      rjump END
		TPOP  pop
		      pop
		END   halt
	`)
	if string(built.Bytes()) != string(want) {
		t.Errorf("IfElse shape differs\nasm:     %v\nbuilder: %v", want, built.Bytes())
	}
}

func TestLoopShape(t *testing.T) {
	p := New().
		Loop(func(b *Builder) { b.PushC(1).Pop() }).
		MustBuild()
	want := asm.MustAssemble(`
		TOP pushc 1
		    pop
		    rjump TOP
	`)
	if string(p.Bytes()) != string(want) {
		t.Errorf("Loop shape differs: %v != %v", p.Bytes(), want)
	}
}

func TestForEachNeighborMatchesScanPattern(t *testing.T) {
	built := New().
		ForEachNeighbor(11, func(b *Builder) { b.Wclone() }).
		Halt().
		MustBuild()
	want := asm.MustAssemble(`
		      pushc 0
		      setvar 11
		LOOP  getvar 11
		      getnbr
		      rjumpc BODY
		      rjump END
		BODY  wclone
		      getvar 11
		      inc
		      setvar 11
		      rjump LOOP
		END   pop
		      halt
	`)
	if string(built.Bytes()) != string(want) {
		t.Errorf("ForEachNeighbor shape differs\nasm:     %v\nbuilder: %v", want, built.Bytes())
	}
}

func TestForEachNeighborBadSlot(t *testing.T) {
	_, err := New().ForEachNeighbor(12, func(b *Builder) { b.Pop() }).Halt().Build()
	if err == nil || !strings.Contains(err.Error(), "heap index 12") {
		t.Fatalf("err = %v", err)
	}
}

func TestReactMatchesFigure2(t *testing.T) {
	// The React combinator must emit the exact Figure 2 prologue.
	built := New().
		React(Tmpl(Str("fir"), TypeV(TypeLocation)), func(b *Builder) {
			b.Pop().Sclone().Halt()
		}).
		MustBuild()
	want := asm.MustAssemble(`
		BEGIN pushn fir
		      pusht LOCATION
		      pushc 2
		      pushcl FIRE
		      regrxn
		      wait
		FIRE  pop
		      sclone
		      halt
	`)
	if string(built.Bytes()) != string(want) {
		t.Errorf("React shape differs\nasm:     %v\nbuilder: %v", want, built.Bytes())
	}
}

func TestHighLevelRemoteOps(t *testing.T) {
	dest := topology.Loc(3, 2)
	built := New().
		RoutTo(dest, Str("abc"), Int(300)).
		RinpFrom(dest, TypeV(TypeValue)).
		Pop().
		RrdpFrom(dest, TypeV(TypeValue)).
		Pop().
		Halt().
		MustBuild()
	want := asm.MustAssemble(`
		pushn abc
		pushcl 300
		pushc 2
		pushloc 3 2
		rout
		pusht VALUE
		pushc 1
		pushloc 3 2
		rinp
		pop
		pusht VALUE
		pushc 1
		pushloc 3 2
		rrdp
		pop
		halt
	`)
	if string(built.Bytes()) != string(want) {
		t.Errorf("remote ops differ\nasm:     %v\nbuilder: %v", want, built.Bytes())
	}
}

func TestSenseConvenience(t *testing.T) {
	a := New().Sense(SensorTemperature).Pop().Halt().MustBuild()
	b := New().PushC(1).Sense().Pop().Halt().MustBuild()
	if string(a.Bytes()) != string(b.Bytes()) {
		t.Errorf("Sense(TEMPERATURE) %v != PushC+Sense %v", a.Bytes(), b.Bytes())
	}
}
