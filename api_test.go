package agilla_test

// Tests for the composable deployment API: topologies, functional
// options, agent handles, and the scenario runner.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/agilla-go/agilla"
)

// marker is an agent that stamps <"vst", here> and halts.
const marker = "pushn vst\nloc\npushc 2\nout\nhalt"

var visited = agilla.Tmpl(agilla.Str("vst"), agilla.TypeV(3))

// playFarthestCourier injects the marker agent at the mote farthest from
// the base station and waits for it to finish — the shared workload of
// TestScenarioOnRandomDisk and BenchmarkRandomDiskMigration.
func playFarthestCourier(_ context.Context, nw *agilla.Network, m *agilla.Metrics) error {
	base := nw.Base().Loc()
	far := nw.Locations()[0]
	for _, l := range nw.Locations() {
		if l.Dist(base) > far.Dist(base) {
			far = l
		}
	}
	ag, err := nw.Inject(marker, far)
	if err != nil {
		return err
	}
	done, err := ag.WaitDone(2 * time.Minute)
	if err != nil {
		return err
	}
	m.Completed = done // a lossy radio may legitimately lose the agent
	m.Set("hops", float64(ag.Hops()))
	return nil
}

func TestNewDefaultsToPaperTestbed(t *testing.T) {
	nw, err := agilla.New()
	if err != nil {
		t.Fatal(err)
	}
	if w, h := nw.Size(); w != 5 || h != 5 {
		t.Fatalf("default size = %dx%d, want 5x5", w, h)
	}
	if n := len(nw.Locations()); n != 25 {
		t.Fatalf("default deployment has %d motes, want 25", n)
	}
}

func TestNewRejectsInvalidTopology(t *testing.T) {
	for _, top := range []agilla.Topology{
		agilla.Grid(0, 5),
		agilla.Line(0),
		agilla.Ring(2),
		agilla.RandomDisk(20, 4, 2.5),        // more motes than cells
		agilla.RandomDisk(20, 1, 2.5),        // degenerate region
		agilla.RandomDisk(8, 8, 0),           // zero radio range
		agilla.Custom(1.5, agilla.Loc(0, 0)), // node on the base station
	} {
		if _, err := agilla.New(agilla.WithTopology(top)); err == nil {
			t.Errorf("topology %v must fail New", top)
		}
	}
}

// TestLineMigrationEndToEnd walks an agent down a line: the injection is
// a real hop-by-hop migration relayed through every intermediate mote.
func TestLineMigrationEndToEnd(t *testing.T) {
	const n = 6
	nw, err := agilla.New(
		agilla.WithTopology(agilla.Line(n)),
		agilla.WithReliableRadio(),
		agilla.WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	end := agilla.Loc(n, 1)
	ag, err := nw.Inject(marker, end)
	if err != nil {
		t.Fatal(err)
	}
	done, err := ag.WaitDone(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatalf("agent never finished: %v", ag)
	}
	if !ag.Halted() || ag.Err() != nil {
		t.Fatalf("agent should have halted cleanly: %v (err %v)", ag, ag.Err())
	}
	if ag.Location() != end {
		t.Fatalf("agent ended at %v, want %v", ag.Location(), end)
	}
	// Base -> gateway -> ... -> (n,1) is n hops.
	if ag.Hops() != n {
		t.Fatalf("agent took %d hops, want %d", ag.Hops(), n)
	}
	if nw.Count(end, visited) != 1 {
		t.Fatalf("end of line not stamped; space: %v", nw.Tuples(end))
	}
}

// TestRingMigrationEndToEnd circumnavigates a ring via quarter-point
// waypoints: every leg is relayed along the arc by greedy routing, and
// later legs re-cross relay motes the injection already traversed — a
// regression test for the duplicate-transfer suppression collision that
// used to swallow an agent revisiting a node.
func TestRingMigrationEndToEnd(t *testing.T) {
	const n = 12
	nw, err := agilla.New(
		agilla.WithTopology(agilla.Ring(n)),
		agilla.WithReliableRadio(),
		agilla.WithSeed(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	ring := nw.Locations()
	start := ring[0]
	prog := "pushn vst\nloc\npushc 2\nout\n"
	for _, wp := range []agilla.Location{ring[3], ring[6], ring[9], ring[0]} {
		prog += fmt.Sprintf("pushloc %d %d\nsmove\npushn vst\nloc\npushc 2\nout\n", wp.X, wp.Y)
	}
	prog += "halt\n"
	ag, err := nw.Inject(prog, start)
	if err != nil {
		t.Fatal(err)
	}
	done, err := ag.WaitDone(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatalf("agent never finished the loop: %v", ag)
	}
	if ag.Location() != start {
		t.Fatalf("agent ended at %v, want %v (full circumnavigation)", ag.Location(), start)
	}
	for _, wp := range []agilla.Location{ring[0], ring[3], ring[6], ring[9]} {
		if nw.Count(wp, visited) == 0 {
			t.Errorf("waypoint %v not stamped", wp)
		}
	}
	// A full loop is at least the ring circumference, plus injection hops.
	if ag.Hops() < n {
		t.Fatalf("agent took %d hops, want >= %d", ag.Hops(), n)
	}
}

func TestAgentWaitSemantics(t *testing.T) {
	nw, err := agilla.New(
		agilla.WithTopology(agilla.Grid(2, 1)),
		agilla.WithReliableRadio(),
		agilla.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	ag, err := nw.Inject("pushc 16\nsleep\nhalt", agilla.Loc(2, 1))
	if err != nil {
		t.Fatal(err)
	}

	// A predicate that is already true returns immediately without
	// advancing virtual time.
	before := nw.Now()
	ok, err := ag.Wait(func(*agilla.Agent) bool { return true }, time.Hour)
	if err != nil || !ok {
		t.Fatalf("Wait(true) = %v, %v", ok, err)
	}
	if nw.Now() != before {
		t.Fatal("an already-true predicate must not advance time")
	}

	// A predicate that never fires returns false once the limit passes.
	ok, err = ag.Wait(func(*agilla.Agent) bool { return false }, 100*time.Millisecond)
	if err != nil || ok {
		t.Fatalf("Wait(false) = %v, %v", ok, err)
	}
	if elapsed := nw.Now() - before; elapsed > 150*time.Millisecond {
		t.Fatalf("Wait(false) overshot its limit: %v", elapsed)
	}

	// A nil predicate is an error, not a panic.
	if _, err := ag.Wait(nil, time.Second); err == nil {
		t.Fatal("Wait(nil) must fail")
	}

	// WaitDone observes the sleep ending and the halt.
	done, err := ag.WaitDone(time.Minute)
	if err != nil || !done {
		t.Fatalf("WaitDone = %v, %v", done, err)
	}
	if !ag.Done() || ag.Alive() || !ag.Halted() {
		t.Fatalf("terminal handle state wrong: done=%v alive=%v halted=%v", ag.Done(), ag.Alive(), ag.Halted())
	}
	if ag.Host() != nil {
		t.Fatal("a dead agent has no host")
	}
	// Waiting on a dead agent resolves immediately.
	if done, err := ag.WaitDone(time.Second); err != nil || !done {
		t.Fatalf("WaitDone after death = %v, %v", done, err)
	}
}

func TestAgentCloneCount(t *testing.T) {
	nw, err := agilla.New(
		agilla.WithTopology(agilla.Grid(2, 1)),
		agilla.WithReliableRadio(),
		agilla.WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	// Strong-clone once to the neighbor mote, then halt. The clone
	// resumes after the sclone with condition 1 and halts there.
	ag, err := nw.Inject("pushloc 2 1\nsclone\nhalt", agilla.Loc(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if done, err := ag.WaitDone(time.Minute); err != nil || !done {
		t.Fatalf("parent never finished: %v %v", done, err)
	}
	// The parent resumes (and halts) as soon as the handoff is
	// acknowledged; the clone instantiates on the receiver a little
	// later, after the modelled reassembly overhead.
	cloned, err := ag.Wait(func(a *agilla.Agent) bool { return a.Clones() == 1 }, time.Minute)
	if err != nil || !cloned {
		t.Fatalf("parent clone count = %d, want 1 (ok=%v err=%v)", ag.Clones(), cloned, err)
	}
	// The clone is tracked too, attributed to the parent.
	var clone *agilla.Agent
	for _, other := range nw.Agents() {
		if p := other.Parent(); p != nil && p.ID() == ag.ID() {
			clone = other
		}
	}
	if clone == nil {
		t.Fatal("clone not tracked")
	}
	if loc := clone.Location(); loc != agilla.Loc(2, 1) {
		t.Fatalf("clone tracked at %v, want (2,1)", loc)
	}
}

func TestRemoteReadTimeoutTyped(t *testing.T) {
	nw, err := agilla.New(
		agilla.WithTopology(agilla.Grid(3, 1)),
		agilla.WithReliableRadio(),
		agilla.WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	// Kill the target mote: requests vanish, the operation must time out
	// with the typed error rather than a generic failure.
	nw.Node(agilla.Loc(3, 1)).Stop()
	_, ok, err := nw.RemoteRead(agilla.Loc(3, 1), agilla.Tmpl(agilla.Int(1)))
	if ok {
		t.Fatal("read of a dead mote cannot succeed")
	}
	if !errors.Is(err, agilla.ErrRemoteTimeout) {
		t.Fatalf("err = %v, want ErrRemoteTimeout", err)
	}

	// A live mote with no matching tuple is ok=false with NO error.
	if _, ok, err := nw.RemoteRead(agilla.Loc(2, 1), agilla.Tmpl(agilla.Int(1))); ok || err != nil {
		t.Fatalf("no-match read = %v, %v; want false, nil", ok, err)
	}
}

func TestRemoteReadHonorsNodeConfig(t *testing.T) {
	// Shrink the remote-op budget and confirm the derived deadline
	// follows it: the whole timed-out read resolves well inside the old
	// hardcoded 10s.
	nw, err := agilla.New(
		agilla.WithTopology(agilla.Grid(2, 1)),
		agilla.WithReliableRadio(),
		agilla.WithNodeConfig(agilla.NodeConfig{
			RemoteTimeout: 200 * time.Millisecond,
			RemoteRetries: -1, // no retransmissions
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	nw.Node(agilla.Loc(2, 1)).Stop()
	before := nw.Now()
	_, _, err = nw.RemoteRead(agilla.Loc(2, 1), agilla.Tmpl(agilla.Int(1)))
	if !errors.Is(err, agilla.ErrRemoteTimeout) {
		t.Fatalf("err = %v, want ErrRemoteTimeout", err)
	}
	if elapsed := nw.Now() - before; elapsed > 2*time.Second {
		t.Fatalf("timeout took %v of virtual time; deadline not derived from config", elapsed)
	}
}

// courierScenario is a small deterministic scenario used by the runner
// tests: an agent stamps the far corner of a reliable 3×3 grid.
func courierScenario() *agilla.Scenario {
	reliable := agilla.ReliableRadio()
	return &agilla.Scenario{
		Name:     "courier",
		Topology: agilla.Grid(3, 3),
		Radio:    &reliable,
		Agents:   []agilla.AgentSpec{{Name: "courier", Source: marker, At: agilla.Loc(3, 3)}},
		Duration: 2 * time.Minute,
		Until: func(nw *agilla.Network) bool {
			return nw.Count(agilla.Loc(3, 3), visited) > 0
		},
		Collect: func(nw *agilla.Network, m *agilla.Metrics) {
			m.Set("stamped", float64(nw.Count(agilla.Loc(3, 3), visited)))
		},
	}
}

func TestScenarioRun(t *testing.T) {
	m, err := courierScenario().Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed {
		t.Fatalf("scenario incomplete: %v", m)
	}
	if m.Values["stamped"] != 1 {
		t.Fatalf("stamped = %v", m.Values["stamped"])
	}
	if m.AgentsSpawned < 1 || m.Hops < 4 || m.FramesSent == 0 {
		t.Fatalf("implausible metrics: %v", m)
	}
}

// TestRunManyDeterminism is the core contract of the parallel runner:
// fanning seeds out across goroutines yields byte-identical metrics to
// running each seed serially, because every run owns its simulator.
func TestRunManyDeterminism(t *testing.T) {
	sc := courierScenario()
	seeds := []int64{1, 2, 3, 4, 5, 6}

	parallel, err := sc.RunMany(context.Background(), seeds)
	if err != nil {
		t.Fatal(err)
	}
	parallel2, err := sc.RunMany(context.Background(), seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		serial, err := sc.Run(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel[i]) {
			t.Errorf("seed %d: parallel %v != serial %v", seed, parallel[i], serial)
		}
		if !reflect.DeepEqual(parallel[i], parallel2[i]) {
			t.Errorf("seed %d: two parallel sweeps diverged: %v vs %v", seed, parallel[i], parallel2[i])
		}
	}
}

func TestRunManyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := courierScenario().RunMany(ctx, []int64{1, 2, 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestScenarioOnRandomDisk(t *testing.T) {
	reliable := agilla.ReliableRadio()
	sc := &agilla.Scenario{
		Name:     "disk-sweep",
		Topology: agilla.RandomDisk(12, 6, 2.5),
		Radio:    &reliable,
		Play:     playFarthestCourier,
	}
	m, err := sc.Run(11)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed {
		t.Fatalf("disk courier never arrived: %v", m)
	}
	if m.Values["hops"] < 1 {
		t.Fatalf("expected at least one hop, got %v", m.Values["hops"])
	}
}

func TestCustomTopology(t *testing.T) {
	// A T-shaped deployment impossible to express as a grid size.
	locs := []agilla.Location{
		agilla.Loc(1, 1), agilla.Loc(2, 1), agilla.Loc(3, 1),
		agilla.Loc(2, 2), agilla.Loc(2, 3),
	}
	nw, err := agilla.New(
		agilla.WithTopology(agilla.Custom(1.2, locs...)),
		agilla.WithReliableRadio(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	ag, err := nw.Inject(marker, agilla.Loc(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if done, err := ag.WaitDone(time.Minute); err != nil || !done {
		t.Fatalf("courier on custom topology: done=%v err=%v (%v)", done, err, ag)
	}
	if nw.Count(agilla.Loc(2, 3), visited) != 1 {
		t.Fatal("top of the T not stamped")
	}
}
