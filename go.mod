module github.com/agilla-go/agilla

go 1.22
