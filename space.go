package agilla

// Space handles: the host-facing view of one node's Linda-like tuple
// space. Agents coordinate through per-node tuple spaces with reactions
// (§2.2); Space gives hosts, tests, and dashboards the same vocabulary —
// probe operations plus reactive Watch subscriptions — instead of a
// grab-bag of Network methods.

import (
	"fmt"
)

// Space is a handle on the tuple space of one node. Obtain one from
// Network.Space; handles are cheap values and remain valid for the life
// of the network. Operations through the handle execute immediately on
// the host (they model the user leaning over the deployment, not a radio
// message); for over-the-air operations from the base station use
// RemoteClient.
type Space struct {
	nw  *Network
	loc Location
}

// Space returns the tuple space handle for the node at loc. The base
// station's space is at its location (default (0,0)). A handle for a
// location with no node is valid but empty: probes miss, Out fails, and
// Watch channels close immediately.
func (nw *Network) Space(loc Location) Space { return Space{nw: nw, loc: loc} }

// Loc returns the node location this handle addresses.
func (sp Space) Loc() Location { return sp.loc }

// Exists reports whether a node lives at the handle's location.
func (sp Space) Exists() bool { return sp.nw.d.Node(sp.loc) != nil }

// Out inserts a tuple. It fails with ErrNoSuchNode if no node lives
// here, and otherwise if the tuple is oversized or the node's arena is
// full (the insertion is atomic: all or nothing, §3.2).
func (sp Space) Out(t Tuple) error {
	n := sp.nw.d.Node(sp.loc)
	if n == nil {
		return fmt.Errorf("%w at %v", ErrNoSuchNode, sp.loc)
	}
	return n.Space().Out(t)
}

// Rdp copies the first tuple matching the template without removing it,
// reporting whether a match was found.
func (sp Space) Rdp(p Template) (Tuple, bool) {
	n := sp.nw.d.Node(sp.loc)
	if n == nil {
		return Tuple{}, false
	}
	return n.Space().Rdp(p)
}

// Inp removes and returns the first tuple matching the template.
func (sp Space) Inp(p Template) (Tuple, bool) {
	n := sp.nw.d.Node(sp.loc)
	if n == nil {
		return Tuple{}, false
	}
	return n.Space().Inp(p)
}

// Count returns how many stored tuples match the template.
func (sp Space) Count(p Template) int {
	n := sp.nw.d.Node(sp.loc)
	if n == nil {
		return 0
	}
	return n.Space().Count(p)
}

// All returns copies of every stored tuple, in insertion order.
func (sp Space) All() []Tuple {
	n := sp.nw.d.Node(sp.loc)
	if n == nil {
		return nil
	}
	return n.Space().All()
}

// Watch subscribes to insertions matching the template: the host-side
// analogue of an agent's regrxn, layered on the same tuple-space-manager
// insert hook that fires reactions (§3.2). Every tuple inserted after
// the call whose fields match p is delivered to the returned channel in
// insertion order. Like reactions — and unlike in/rd — Watch observes
// insertions only; tuples already in the space are not replayed (probe
// with Rdp/All first for a snapshot-then-watch idiom).
//
// Delivery never blocks or perturbs the simulation: matches queue
// without bound until read. The channel closes after Network.Close, once
// already-queued matches have been drained (the same close+drain
// contract as Events).
//
// A watch observes one incarnation of the node's space: if the node dies
// (churn, energy exhaustion, Kill), its volatile space is destroyed and
// the watch terminates — already-queued tuples remain readable, then the
// channel closes, so ranging over a watch ends at whichever comes first
// of node death and Network.Close. Re-Watch after a revival to observe
// the new space. A watch follows its node through relocations.
func (sp Space) Watch(p Template) <-chan Tuple {
	st := newStream[Tuple]()
	n := sp.nw.d.Node(sp.loc)
	if n == nil {
		st.close()
		return st.out
	}
	// Closing unregisters the matcher too, so a finished watch costs the
	// node's insert path nothing.
	sp.nw.registerWatch(sp.loc, func() func() {
		return n.Space().OnInsert(func(t Tuple) {
			if p.Matches(t) {
				st.push(t)
			}
		})
	}, st)
	return st.out
}
