package agilla_test

// Replication property tests: the end-to-end contracts of the gossip
// CRDT layer (README "Replication") exercised through the public API
// only — Out/Inp through Space, kills through the world API, and
// readability through the base station's wire protocol, so "readable
// somewhere" means what a deployed user would observe, not what an
// internal store claims.

import (
	"testing"
	"time"

	"github.com/agilla-go/agilla"
)

// TestReplicationSurvivesChurn pins the two safety properties of the
// replicated tuple space under kill+revive churn with k >= 2:
//
//  1. Liveness of adds: every tuple Out before a crash is readable
//     somewhere (origin arena or any replica, via a network-wide Query)
//     once gossip quiesces — while the origin is down and after it
//     revives, when its own tuples must be streamed back.
//  2. Permanence of removes: a tuple consumed by Inp before the crash is
//     tombstoned and never resurrects, not even when its origin reboots
//     and is re-seeded from neighbors that still hold stale replicas.
func TestReplicationSurvivesChurn(t *testing.T) {
	nw, err := agilla.New(
		agilla.WithTopology(agilla.Grid(4, 4)),
		agilla.WithReliableRadio(),
		agilla.WithSeed(11),
		agilla.WithReplication(2, 300*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := nw.Replication()
	if cfg == nil || cfg.K != 2 || cfg.Groups == 0 {
		t.Fatalf("Replication() = %+v, want K=2 with defaults resolved", cfg)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}

	// Every mote publishes one marker; the victim additionally publishes a
	// keeper that must outlive its crash.
	locs := nw.Locations()
	victimIdx := 5
	victim := locs[victimIdx]
	for i, loc := range locs {
		if err := nw.Space(loc).Out(agilla.T(agilla.Str("sv"), agilla.Int(int16(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Space(victim).Out(agilla.T(agilla.Str("kp"), agilla.Int(int16(victimIdx)))); err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(3 * time.Second); err != nil {
		t.Fatal(err) // let gossip spread the adds
	}

	// Consume the victim's marker over the air: the Inp tombstones it in
	// the CRDT, and the tombstone gossips outward.
	tomb := agilla.Tmpl(agilla.Str("sv"), agilla.Int(int16(victimIdx)))
	if _, ok, err := nw.Remote().Rinp(victim, tomb); err != nil || !ok {
		t.Fatalf("Rinp(victim marker) = %v, %v", ok, err)
	}
	if err := nw.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := nw.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	query := func(p agilla.Template) int {
		matches, err := nw.Remote().Query(p)
		if err != nil {
			t.Fatal(err)
		}
		return len(matches)
	}

	// While the origin is down, its keeper lives on in replicas...
	if n := query(agilla.Tmpl(agilla.Str("kp"), agilla.Int(int16(victimIdx)))); n == 0 {
		t.Fatal("victim's keeper unreadable while victim is down")
	}
	// ...and the tombstoned marker is gone network-wide.
	if n := query(tomb); n != 0 {
		t.Fatalf("tombstoned marker readable at %d motes while victim is down", n)
	}

	if err := nw.Revive(victim); err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(6 * time.Second); err != nil {
		t.Fatal(err) // boot + anti-entropy back-fill
	}

	// Every marker Out before the crash (minus the consumed one) is
	// readable somewhere after quiescence.
	for i := range locs {
		p := agilla.Tmpl(agilla.Str("sv"), agilla.Int(int16(i)))
		want := i != victimIdx
		if got := query(p) > 0; got != want {
			t.Errorf("marker %d readable=%v, want %v", i, got, want)
		}
	}
	// The keeper came home: the revived victim's own arena holds it again
	// (streamed back by neighbors), not just some replica.
	kp := agilla.Tmpl(agilla.Str("kp"), agilla.Int(int16(victimIdx)))
	if n := nw.Space(victim).Count(kp); n != 1 {
		t.Errorf("revived victim holds %d keepers, want 1 (recovery did not stream it back)", n)
	}
	// And the tombstone held through the reboot: no resurrection.
	if n := query(tomb); n != 0 {
		t.Errorf("tombstoned marker resurrected at %d motes after revival", n)
	}
	if nw.Space(victim).Count(tomb) != 0 {
		t.Error("tombstoned marker back in the revived origin's arena")
	}
}
