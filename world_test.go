package agilla_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/agilla-go/agilla"
	"github.com/agilla-go/agilla/program"
)

// TestScenarioFaultScript: a declarative kill+revive+move script runs
// inside a scenario and is visible in the metrics and the world counters.
func TestScenarioFaultScript(t *testing.T) {
	s := &agilla.Scenario{
		Name:     "faults",
		Topology: agilla.Grid(3, 3),
		Radio:    ptr(agilla.ReliableRadio()),
		Duration: 30 * time.Second,
		Faults: []agilla.WorldEvent{
			agilla.KillAt(8*time.Second, agilla.Loc(2, 2)),
			agilla.ReviveAt(15*time.Second, agilla.Loc(2, 2)),
			agilla.MoveAt(12*time.Second, agilla.Loc(3, 3), agilla.Loc(4, 3)),
			agilla.KillAt(9*time.Second, agilla.Loc(9, 9)), // nobody there: rejected
		},
	}
	m, err := s.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if m.NodesDied != 1 || m.NodesRecovered != 1 || m.NodesMoved != 1 {
		t.Fatalf("world census = died %d recovered %d moved %d, want 1/1/1 (metrics %v)",
			m.NodesDied, m.NodesRecovered, m.NodesMoved, m)
	}
}

// TestScenarioFaultDeterminism: the same fault script plus churn produces
// byte-identical metrics across runs and across kernel worker counts.
func TestScenarioFaultDeterminism(t *testing.T) {
	build := func(workers int) *agilla.Scenario {
		return &agilla.Scenario{
			Name:     "churny",
			Topology: agilla.Grid(4, 4),
			Duration: 25 * time.Second,
			Workers:  workers,
			Churn: &agilla.ChurnProcess{
				MeanUp:   12 * time.Second,
				MeanDown: 4 * time.Second,
				Start:    6 * time.Second,
			},
			Faults: []agilla.WorldEvent{
				agilla.MoveAt(10*time.Second, agilla.Loc(4, 4), agilla.Loc(5, 4)),
			},
			Agents: []agilla.AgentSpec{{
				Name:   "wanderer",
				Source: roundTripSrc(agilla.Loc(4, 1)),
				At:     agilla.Loc(1, 1),
			}},
		}
	}
	want, err := build(1).Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if want.NodesDied == 0 {
		t.Fatalf("churn never killed anything: %v", want)
	}
	snap := func(m *agilla.Metrics) string { return fmt.Sprintf("%+v", *m) }
	again, err := build(1).Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if snap(again) != snap(want) {
		t.Fatalf("same seed diverged:\n  %v\n  %v", again, want)
	}
	par, err := build(4).Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if snap(par) != snap(want) {
		t.Fatalf("4-worker run diverged from sequential:\n  %v\n  %v", par, want)
	}
	other, err := build(1).Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if snap(other) == snap(want) {
		t.Fatal("different seeds produced identical churn metrics; the process is not seeded")
	}
}

// TestAgentWaitErrNodeDown: an agent waiting for a condition dies with
// its host; Wait surfaces the typed error instead of idling out.
func TestAgentWaitErrNodeDown(t *testing.T) {
	nw, err := agilla.New(
		agilla.WithTopology(agilla.Grid(2, 1)),
		agilla.WithReliableRadio(),
		agilla.WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	// A sleepy agent parks on (2,1) forever.
	p := program.New("sleeper").Label("L").PushC(8).Sleep().Jump("L").MustBuild()
	ag, err := nw.Launch(p, agilla.Loc(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := nw.RunUntil(func() bool { return ag.Host() != nil }, 30*time.Second); err != nil || !ok {
		t.Fatalf("agent never arrived (ok=%v err=%v)", ok, err)
	}
	nw.Script(agilla.KillAt(nw.Now()+2*time.Second, agilla.Loc(2, 1)))
	ok, err := ag.Wait(func(a *agilla.Agent) bool { return a.Hops() > 10 }, 5*time.Minute)
	if ok || !errors.Is(err, agilla.ErrNodeDown) {
		t.Fatalf("Wait = %v, %v; want false, ErrNodeDown", ok, err)
	}
	if nw.Now() > 4*time.Minute {
		t.Fatalf("Wait idled to %v instead of stopping at the death", nw.Now())
	}
	// WaitDone is satisfied by the death itself and must not error.
	if ok, err := ag.WaitDone(time.Second); !ok || err != nil {
		t.Fatalf("WaitDone = %v, %v; want true, nil", ok, err)
	}
	if !errors.Is(ag.Err(), agilla.ErrNodeDown) {
		t.Fatalf("agent err = %v, want ErrNodeDown", ag.Err())
	}
}

// TestWorldEventsOnStream: node lifecycle events arrive as typed events
// with the right kinds and payloads.
func TestWorldEventsOnStream(t *testing.T) {
	nw, err := agilla.New(
		agilla.WithTopology(agilla.Grid(3, 1)),
		agilla.WithReliableRadio(),
		agilla.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	events := nw.Events(agilla.OfKind(agilla.EventNodeDied, agilla.EventNodeRecovered, agilla.EventNodeMoved))
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	nw.Script(
		agilla.KillAt(nw.Now()+time.Second, agilla.Loc(3, 1)),
		agilla.ReviveAt(nw.Now()+3*time.Second, agilla.Loc(3, 1)),
		agilla.MoveAt(nw.Now()+5*time.Second, agilla.Loc(2, 1), agilla.Loc(2, 2)),
	)
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if life, ok := nw.Life(agilla.Loc(3, 1)); !ok || life != agilla.NodeUp {
		t.Fatalf("revived node life = %v ok=%v", life, ok)
	}
	if life, ok := nw.Life(agilla.Loc(2, 2)); !ok || life != agilla.NodeUp {
		t.Fatalf("moved node life = %v ok=%v", life, ok)
	}
	if _, ok := nw.Life(agilla.Loc(2, 1)); ok {
		t.Fatal("vacated location still reports a node")
	}
	// A hand-built event with a zero Kind is counted, not silently lost.
	nw.Script(agilla.WorldEvent{At: nw.Now(), Loc: agilla.Loc(1, 1)})
	if ws := nw.WorldStats(); ws.Rejected != 1 {
		t.Fatalf("zero-kind event not counted: %+v", ws)
	}
	nw.Close()
	var got []agilla.Event
	for e := range events {
		got = append(got, e)
	}
	if len(got) != 3 {
		t.Fatalf("got %d lifecycle events, want 3: %v", len(got), got)
	}
	if d, ok := got[0].(agilla.NodeDied); !ok || d.Node != agilla.Loc(3, 1) || d.Cause != agilla.CauseKilled {
		t.Fatalf("event 0 = %v", got[0])
	}
	if r, ok := got[1].(agilla.NodeRecovered); !ok || r.Node != agilla.Loc(3, 1) {
		t.Fatalf("event 1 = %v", got[1])
	}
	if mv, ok := got[2].(agilla.NodeMoved); !ok || mv.From != agilla.Loc(2, 1) || mv.Node != agilla.Loc(2, 2) {
		t.Fatalf("event 2 = %v", got[2])
	}
}

// TestEnergyModelPublic: WithEnergy drains batteries, kills exhausted
// motes with typed events, and reports through Battery.
func TestEnergyModelPublic(t *testing.T) {
	m := agilla.DefaultEnergyModel()
	m.CapacityJ = 0.02
	nw, err := agilla.New(
		agilla.WithTopology(agilla.Grid(2, 1)),
		agilla.WithReliableRadio(),
		agilla.WithSeed(9),
		agilla.WithEnergy(m),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	deaths := nw.Events(agilla.OfKind(agilla.EventEnergyExhausted))
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	used, capJ, ok := nw.Battery(agilla.Loc(1, 1))
	if !ok || capJ != m.CapacityJ {
		t.Fatalf("battery = %g/%g ok=%v", used, capJ, ok)
	}
	if used <= 0 {
		t.Fatal("warm-up beaconing drained nothing")
	}
	if _, _, ok := nw.Battery(nw.Base().Loc()); ok {
		t.Fatal("the base station must be mains powered")
	}
	// Run until the beacon+idle budget is gone.
	if err := nw.Run(4 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if life, _ := nw.Life(agilla.Loc(1, 1)); life != agilla.NodeDown {
		t.Fatalf("mote life = %v, want down after exhausting %g J", life, m.CapacityJ)
	}
	nw.Close()
	n := 0
	for e := range deaths {
		ex := e.(agilla.EnergyExhausted)
		if ex.UsedJ < m.CapacityJ {
			t.Errorf("exhausted below capacity: %v", ex)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("energy deaths = %d, want 2", n)
	}
}

func ptr[T any](v T) *T { return &v }

// roundTripSrc is a minimal there-and-back agent in Agilla assembly.
func roundTripSrc(far agilla.Location) string {
	return fmt.Sprintf(`
		pushloc %d %d
		smove
		pushloc 1 1
		smove
		halt
	`, far.X, far.Y)
}
