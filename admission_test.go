package agilla_test

import (
	"errors"
	"testing"

	"github.com/agilla-go/agilla"
	"github.com/agilla-go/agilla/program"
)

func admissionNetwork(t *testing.T, budgetJ float64) *agilla.Network {
	t.Helper()
	nw, err := agilla.New(agilla.WithSeed(1), agilla.WithAdmissionBudget(budgetJ))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatalf("WarmUp: %v", err)
	}
	return nw
}

// With a zero budget, admission rejects only programs the analysis
// cannot certify: unbounded bursts and guaranteed runtime errors.
func TestAdmissionRejectsUnbounded(t *testing.T) {
	nw := admissionNetwork(t, 0)
	dest := nw.Locations()[0]

	// A busy loop that never yields has no finite per-burst bound.
	loop := program.MustParse(`
		TOP pushc 1
		    pop
		    rjump TOP
	`)
	if _, err := nw.Launch(loop, dest); !errors.Is(err, agilla.ErrAdmission) {
		t.Errorf("Launch(busy loop) = %v, want ErrAdmission", err)
	}

	// A guaranteed type mismatch is an error-level finding.
	bad := program.MustParse("pushc 5\nsmove\nhalt\n")
	if _, err := nw.Launch(bad, dest); !errors.Is(err, agilla.ErrAdmission) {
		t.Errorf("Launch(type mismatch) = %v, want ErrAdmission", err)
	}

	// Every library agent certifies under a zero budget.
	for _, e := range program.Library() {
		if _, err := nw.Launch(e.Program, dest); err != nil {
			t.Errorf("Launch(%s) = %v, want admission", e.Name, err)
		}
	}
}

// A positive budget additionally caps the certified per-burst bound.
func TestAdmissionBudgetCapsBound(t *testing.T) {
	nw := admissionNetwork(t, 1e-9) // 1 nJ: nothing fits
	dest := nw.Locations()[0]
	blink := program.Library()[0].Program
	_, err := nw.Launch(blink, dest)
	if !errors.Is(err, agilla.ErrAdmission) {
		t.Fatalf("Launch under 1 nJ budget = %v, want ErrAdmission", err)
	}

	// A generous budget admits the same agent.
	nw2 := admissionNetwork(t, 1.0)
	if _, err := nw2.Launch(blink, dest); err != nil {
		t.Errorf("Launch under 1 J budget = %v, want admission", err)
	}
}

// Without WithAdmissionBudget, Launch performs no analysis and accepts
// any verified program, preserving the pre-admission behavior.
func TestNoAdmissionByDefault(t *testing.T) {
	nw, err := agilla.New(agilla.WithSeed(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatalf("WarmUp: %v", err)
	}
	loop := program.MustParse(`
		TOP pushc 1
		    pop
		    rjump TOP
	`)
	if _, err := nw.Launch(loop, nw.Locations()[0]); err != nil {
		t.Errorf("Launch without admission = %v, want nil", err)
	}
}
