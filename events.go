package agilla

// Typed middleware events. The deployment-wide Trace of the old API
// exposed bare callbacks whose parameters were internal types external
// callers could not even name; this file replaces it with public Event
// variants and enums, delivered through channel subscriptions created by
// Network.Events. Internally the events are adapted from the same core
// trace hooks the experiment harness uses.

import (
	"fmt"
	"sync"
	"time"

	"github.com/agilla-go/agilla/internal/vm"
	"github.com/agilla-go/agilla/internal/wire"
)

// MigKind identifies how an agent materialized on, or left, a node: the
// four migration instructions of §2.2 plus base-station injection.
type MigKind uint8

// Migration kinds.
const (
	MigStrongMove  = MigKind(wire.MigStrongMove)
	MigWeakMove    = MigKind(wire.MigWeakMove)
	MigStrongClone = MigKind(wire.MigStrongClone)
	MigWeakClone   = MigKind(wire.MigWeakClone)
	MigInject      = MigKind(wire.MigInject)
)

// String returns the assembly mnemonic ("smove", "wclone", "inject").
func (k MigKind) String() string { return wire.MigKind(k).String() }

// Strong reports whether full state travels with the agent.
func (k MigKind) Strong() bool { return wire.MigKind(k).Strong() }

// Clone reports whether the original keeps running.
func (k MigKind) Clone() bool { return k == MigStrongClone || k == MigWeakClone }

// RemoteKind identifies a remote tuple space operation (§2.2: only
// probing operations are provided remotely, so an agent cannot block
// forever on message loss).
type RemoteKind uint8

// Remote operation kinds.
const (
	RemoteOut = RemoteKind(vm.RemoteOut)
	RemoteInp = RemoteKind(vm.RemoteInp)
	RemoteRdp = RemoteKind(vm.RemoteRdp)
)

// String returns the instruction mnemonic ("rout", "rinp", "rrdp").
func (k RemoteKind) String() string { return vm.RemoteKind(k).String() }

// Opcode is one VM instruction opcode, as found in bytecode produced by
// Assemble. Opcodes from Figure 7 of the paper are used verbatim.
type Opcode byte

// String returns the assembly mnemonic ("pushc", "smove", "regrxn").
func (o Opcode) String() string { return vm.Op(o).String() }

// OpcodeByName returns the opcode for an assembly mnemonic.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := vm.ByName(name)
	return Opcode(op), ok
}

// EventKind discriminates Event variants; use it with OfKind to subscribe
// to a subset of the stream.
type EventKind uint8

// Event kinds, one per variant.
const (
	EventAgentArrived EventKind = iota + 1
	EventAgentHalted
	EventAgentDied
	EventMigrationStarted
	EventMigrationDone
	EventRemoteDone
	EventTupleOut
	EventReactionFired
	EventNodeDied
	EventNodeRecovered
	EventNodeMoved
	EventEnergyExhausted
	EventReplicaSynced
	EventTupleRecovered
)

func (k EventKind) String() string {
	switch k {
	case EventAgentArrived:
		return "agent-arrived"
	case EventAgentHalted:
		return "agent-halted"
	case EventAgentDied:
		return "agent-died"
	case EventMigrationStarted:
		return "migration-started"
	case EventMigrationDone:
		return "migration-done"
	case EventRemoteDone:
		return "remote-done"
	case EventTupleOut:
		return "tuple-out"
	case EventReactionFired:
		return "reaction-fired"
	case EventNodeDied:
		return "node-died"
	case EventNodeRecovered:
		return "node-recovered"
	case EventNodeMoved:
		return "node-moved"
	case EventEnergyExhausted:
		return "energy-exhausted"
	case EventReplicaSynced:
		return "replica-synced"
	case EventTupleRecovered:
		return "tuple-recovered"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one middleware occurrence somewhere in the network. The
// concrete variants are AgentArrived, AgentHalted, AgentDied,
// MigrationStarted, MigrationDone, RemoteDone, TupleOut, and
// ReactionFired; type-switch to access variant fields:
//
//	for e := range nw.Events(agilla.OfKind(agilla.EventAgentDied)) {
//		d := e.(agilla.AgentDied)
//		fmt.Println(d.AgentID, d.Err)
//	}
//
// The interface is sealed: only this package defines variants.
type Event interface {
	// Kind discriminates the variant.
	Kind() EventKind
	// When is the virtual time the event occurred.
	When() time.Duration
	// Where is the node the event occurred on.
	Where() Location
	// String renders the event readably for logs.
	String() string

	// agentID reports the agent the event concerns, if any; it also seals
	// the interface.
	agentID() (uint16, bool)
}

// AgentArrived reports an agent materializing on a node: a completed
// injection, a completed move hop, or a clone instantiation.
type AgentArrived struct {
	At      time.Duration
	Node    Location
	AgentID uint16
	// Mig is how the agent got here (inject, smove, wmove, sclone,
	// wclone).
	Mig MigKind
	// From is the node the agent came from.
	From Location
}

func (e AgentArrived) Kind() EventKind         { return EventAgentArrived }
func (e AgentArrived) When() time.Duration     { return e.At }
func (e AgentArrived) Where() Location         { return e.Node }
func (e AgentArrived) agentID() (uint16, bool) { return e.AgentID, true }
func (e AgentArrived) String() string {
	return fmt.Sprintf("agent %d arrived at %v from %v (%v)", e.AgentID, e.Node, e.From, e.Mig)
}

// AgentHalted reports an agent voluntarily executing halt.
type AgentHalted struct {
	At      time.Duration
	Node    Location
	AgentID uint16
}

func (e AgentHalted) Kind() EventKind         { return EventAgentHalted }
func (e AgentHalted) When() time.Duration     { return e.At }
func (e AgentHalted) Where() Location         { return e.Node }
func (e AgentHalted) agentID() (uint16, bool) { return e.AgentID, true }
func (e AgentHalted) String() string {
	return fmt.Sprintf("agent %d halted at %v", e.AgentID, e.Node)
}

// AgentDied reports an agent dying with an error.
type AgentDied struct {
	At      time.Duration
	Node    Location
	AgentID uint16
	Err     error
}

func (e AgentDied) Kind() EventKind         { return EventAgentDied }
func (e AgentDied) When() time.Duration     { return e.At }
func (e AgentDied) Where() Location         { return e.Node }
func (e AgentDied) agentID() (uint16, bool) { return e.AgentID, true }
func (e AgentDied) String() string {
	return fmt.Sprintf("agent %d died at %v: %v", e.AgentID, e.Node, e.Err)
}

// MigrationStarted reports a hop transfer beginning on the sending node
// (once per hop of a multi-hop move).
type MigrationStarted struct {
	At      time.Duration
	Node    Location
	AgentID uint16
	Mig     MigKind
	Dest    Location
}

func (e MigrationStarted) Kind() EventKind         { return EventMigrationStarted }
func (e MigrationStarted) When() time.Duration     { return e.At }
func (e MigrationStarted) Where() Location         { return e.Node }
func (e MigrationStarted) agentID() (uint16, bool) { return e.AgentID, true }
func (e MigrationStarted) String() string {
	return fmt.Sprintf("agent %d %v %v -> %v", e.AgentID, e.Mig, e.Node, e.Dest)
}

// MigrationDone reports the sender-side conclusion of a hop transfer.
type MigrationDone struct {
	At      time.Duration
	Node    Location
	AgentID uint16
	Mig     MigKind
	Dest    Location
	// OK reports whether the receiver acknowledged the handoff; a failed
	// hop resumes the agent on the sender with condition zero.
	OK bool
}

func (e MigrationDone) Kind() EventKind         { return EventMigrationDone }
func (e MigrationDone) When() time.Duration     { return e.At }
func (e MigrationDone) Where() Location         { return e.Node }
func (e MigrationDone) agentID() (uint16, bool) { return e.AgentID, true }
func (e MigrationDone) String() string {
	verdict := "ok"
	if !e.OK {
		verdict = "failed"
	}
	return fmt.Sprintf("agent %d %v %v -> %v %s", e.AgentID, e.Mig, e.Node, e.Dest, verdict)
}

// RemoteDone reports an agent-initiated remote tuple space operation
// resolving on its initiator: a reply arrived, or the retransmission
// budget ran out.
type RemoteDone struct {
	At      time.Duration
	Node    Location
	AgentID uint16
	Op      RemoteKind
	Dest    Location
	// OK reports operation success; a timed-out or no-match operation
	// clears the agent's condition code instead.
	OK bool
	// Elapsed is initiation to resolution in virtual time.
	Elapsed time.Duration
}

func (e RemoteDone) Kind() EventKind         { return EventRemoteDone }
func (e RemoteDone) When() time.Duration     { return e.At }
func (e RemoteDone) Where() Location         { return e.Node }
func (e RemoteDone) agentID() (uint16, bool) { return e.AgentID, true }
func (e RemoteDone) String() string {
	verdict := "ok"
	if !e.OK {
		verdict = "failed"
	}
	return fmt.Sprintf("agent %d %v %v -> %v %s in %v", e.AgentID, e.Op, e.Node, e.Dest, verdict, e.Elapsed)
}

// TupleOut reports a successful tuple insertion into a node's local
// space, whatever inserted it (an agent's out, a remote rout, a context
// tuple, or the host API).
type TupleOut struct {
	At    time.Duration
	Node  Location
	Tuple Tuple
}

func (e TupleOut) Kind() EventKind         { return EventTupleOut }
func (e TupleOut) When() time.Duration     { return e.At }
func (e TupleOut) Where() Location         { return e.Node }
func (e TupleOut) agentID() (uint16, bool) { return 0, false }
func (e TupleOut) String() string {
	return fmt.Sprintf("tuple %v out at %v", e.Tuple, e.Node)
}

// ReactionFired reports a tuple insertion triggering a reaction
// registered by an agent (§3.2 Tuple Space Manager).
type ReactionFired struct {
	At   time.Duration
	Node Location
	// AgentID owns the reaction that fired.
	AgentID uint16
	// Tuple is the inserted tuple that matched the reaction's template.
	Tuple Tuple
}

func (e ReactionFired) Kind() EventKind         { return EventReactionFired }
func (e ReactionFired) When() time.Duration     { return e.At }
func (e ReactionFired) Where() Location         { return e.Node }
func (e ReactionFired) agentID() (uint16, bool) { return e.AgentID, true }
func (e ReactionFired) String() string {
	return fmt.Sprintf("reaction of agent %d fired at %v on %v", e.AgentID, e.Node, e.Tuple)
}

// NodeDied reports a mote going down: a scripted fault, the host API, or
// battery exhaustion (Cause distinguishes). Hosted agents report their
// own AgentDied events, carrying ErrNodeDown, first.
type NodeDied struct {
	At    time.Duration
	Node  Location
	Cause DownCause
}

func (e NodeDied) Kind() EventKind         { return EventNodeDied }
func (e NodeDied) When() time.Duration     { return e.At }
func (e NodeDied) Where() Location         { return e.Node }
func (e NodeDied) agentID() (uint16, bool) { return 0, false }
func (e NodeDied) String() string {
	return fmt.Sprintf("node %v died (%v)", e.Node, e.Cause)
}

// NodeRecovered reports a dead mote finishing its reboot: back on the
// air with empty spaces, re-seeded context tuples, and a fresh battery.
type NodeRecovered struct {
	At   time.Duration
	Node Location
}

func (e NodeRecovered) Kind() EventKind         { return EventNodeRecovered }
func (e NodeRecovered) When() time.Duration     { return e.At }
func (e NodeRecovered) Where() Location         { return e.Node }
func (e NodeRecovered) agentID() (uint16, bool) { return 0, false }
func (e NodeRecovered) String() string {
	return fmt.Sprintf("node %v recovered", e.Node)
}

// NodeMoved reports a mote relocating from From to Node (its new
// address), agents and tuples aboard.
type NodeMoved struct {
	At   time.Duration
	Node Location // the new location
	From Location // the vacated location
}

func (e NodeMoved) Kind() EventKind         { return EventNodeMoved }
func (e NodeMoved) When() time.Duration     { return e.At }
func (e NodeMoved) Where() Location         { return e.Node }
func (e NodeMoved) agentID() (uint16, bool) { return 0, false }
func (e NodeMoved) String() string {
	return fmt.Sprintf("node moved %v -> %v", e.From, e.Node)
}

// EnergyExhausted reports a battery emptying; the NodeDied it causes
// follows immediately.
type EnergyExhausted struct {
	At   time.Duration
	Node Location
	// UsedJ is the emptied battery's drain in joules (the cells
	// installed at death; a revived mote's earlier batteries are not
	// included).
	UsedJ float64
}

func (e EnergyExhausted) Kind() EventKind         { return EventEnergyExhausted }
func (e EnergyExhausted) When() time.Duration     { return e.At }
func (e EnergyExhausted) Where() Location         { return e.Node }
func (e EnergyExhausted) agentID() (uint16, bool) { return 0, false }
func (e EnergyExhausted) String() string {
	return fmt.Sprintf("node %v exhausted its battery (%.3g J)", e.Node, e.UsedJ)
}

// ReplicaSynced reports a gossip delta changing a node's replica store
// under WithReplication: Added entries were accepted, Removed tombstones
// evicted live replicas. Quiet gossip rounds (digest exchanges that find
// nothing to ship) publish no event.
type ReplicaSynced struct {
	At   time.Duration
	Node Location
	// Peer is the node whose delta changed this store.
	Peer    Location
	Added   int
	Removed int
}

func (e ReplicaSynced) Kind() EventKind         { return EventReplicaSynced }
func (e ReplicaSynced) When() time.Duration     { return e.At }
func (e ReplicaSynced) Where() Location         { return e.Node }
func (e ReplicaSynced) agentID() (uint16, bool) { return 0, false }
func (e ReplicaSynced) String() string {
	return fmt.Sprintf("node %v synced replica from %v (+%d -%d)", e.Node, e.Peer, e.Added, e.Removed)
}

// TupleRecovered reports a revived node re-inserting a tuple it had
// originated before crashing, streamed back out of a neighbor's replica
// store by anti-entropy gossip (WithReplication).
type TupleRecovered struct {
	At    time.Duration
	Node  Location
	Tuple Tuple
}

func (e TupleRecovered) Kind() EventKind         { return EventTupleRecovered }
func (e TupleRecovered) When() time.Duration     { return e.At }
func (e TupleRecovered) Where() Location         { return e.Node }
func (e TupleRecovered) agentID() (uint16, bool) { return 0, false }
func (e TupleRecovered) String() string {
	return fmt.Sprintf("node %v recovered tuple %v", e.Node, e.Tuple)
}

// EventFilter selects a subset of the event stream; a subscription keeps
// an event only if every filter passes. Combine the provided constructors
// or write any predicate over the Event interface.
type EventFilter func(Event) bool

// OfKind keeps events of the given kinds.
func OfKind(kinds ...EventKind) EventFilter {
	set := make(map[EventKind]bool, len(kinds))
	for _, k := range kinds {
		set[k] = true
	}
	return func(e Event) bool { return set[e.Kind()] }
}

// OnNode keeps events occurring on the given nodes.
func OnNode(locs ...Location) EventFilter {
	set := make(map[Location]bool, len(locs))
	for _, l := range locs {
		set[l] = true
	}
	return func(e Event) bool { return set[e.Where()] }
}

// OfAgent keeps events concerning the given agents. Events with no agent
// (TupleOut) never pass.
func OfAgent(ids ...uint16) EventFilter {
	set := make(map[uint16]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(e Event) bool {
		id, ok := e.agentID()
		return ok && set[id]
	}
}

// stream decouples the single-threaded simulation from channel consumers:
// the simulation pushes into an unbounded queue without ever blocking,
// and a pump goroutine forwards the queue to the subscriber's channel in
// order. After close, queued items remain deliverable; the channel closes
// once they are drained.
type stream[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []T
	closed bool
	out    chan T
}

func newStream[T any]() *stream[T] {
	s := &stream[T]{out: make(chan T, 16)}
	s.cond = sync.NewCond(&s.mu)
	go s.pump()
	return s
}

func (s *stream[T]) push(v T) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, v)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *stream[T]) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *stream[T]) pump() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			close(s.out)
			return
		}
		v := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.out <- v
	}
}

// eventSub is one Events subscription.
type eventSub struct {
	filters []EventFilter
	st      *stream[Event]
}

// watchReg is one live Space.Watch registration. loc tracks the watched
// node across relocations so death can be matched to the right watches;
// once makes teardown idempotent between Network.Close and the node-death
// path.
type watchReg struct {
	loc    Location
	remove func()
	st     *stream[Tuple]
	once   sync.Once
}

func (w *watchReg) closeWatch() {
	w.once.Do(func() {
		w.remove()
		w.st.close()
	})
}

// events is the per-network dispatch state behind Events and
// Space.Watch.
type events struct {
	mu        sync.Mutex
	installed bool
	subs      []*eventSub
	watches   []*watchReg
	closers   []func()
	closed    bool
}

// Events subscribes to the middleware event stream. Events occurring
// after the call (while the simulation runs) are delivered to the
// returned channel in occurrence order; an event is delivered only if
// every filter passes. Subscriptions never block or perturb the
// simulation — events queue without bound until read — so the channel
// can be drained between Run calls from the same goroutine, or
// concurrently from another.
//
// Under WithWorkers(n > 1), events from different nodes executing
// concurrently may interleave on the channel in nondeterministic order
// (their At timestamps stay exact and each node's own events stay
// ordered). Consumers needing a cross-node order should sort by When,
// or filter with OnNode; the simulation itself remains deterministic.
//
// The channel closes after Network.Close, once already-queued events
// have been drained.
func (nw *Network) Events(filters ...EventFilter) <-chan Event {
	sub := &eventSub{filters: filters, st: newStream[Event]()}
	nw.ev.mu.Lock()
	defer nw.ev.mu.Unlock()
	if nw.ev.closed {
		sub.st.close()
		return sub.st.out
	}
	nw.installTaps()
	nw.ev.subs = append(nw.ev.subs, sub)
	nw.ev.closers = append(nw.ev.closers, sub.st.close)
	return sub.st.out
}

// Close ends every event and watch subscription. The contract, exactly:
//
//   - Every event published before Close remains deliverable: the
//     subscription channel keeps yielding queued items in order.
//   - Each channel closes once its queue is drained; a fully-drained
//     channel closes immediately. Ranging over the channel therefore
//     always terminates after Close.
//   - Events occurring after Close are delivered nowhere.
//   - Each subscription's pump goroutine exits once its channel has been
//     drained to close — but a pump blocked on an unread channel holds
//     its goroutine, so abandoning an undrained channel after Close
//     leaks exactly that pump until the channel is read or the process
//     ends. Drain (or never subscribe) if goroutine hygiene matters;
//     TestCloseDrainsAndReleasesGoroutines pins this behavior.
//   - Close is idempotent, and subscribing after Close yields an
//     immediately-closed channel.
//
// On a bridged network (WithTransportBridge) Close also tears down the
// border: the transport closes and frames to peer-owned locations are
// dropped from then on. The local simulation itself remains usable.
func (nw *Network) Close() error {
	var err error
	if nw.bridge != nil {
		err = nw.bridge.Close()
	}
	nw.ev.mu.Lock()
	defer nw.ev.mu.Unlock()
	if nw.ev.closed {
		return err
	}
	nw.ev.closed = true
	for _, c := range nw.ev.closers {
		c()
	}
	nw.ev.subs = nil
	nw.ev.closers = nil
	return err
}

// publish fans one event out to every matching subscription.
func (nw *Network) publish(e Event) {
	nw.ev.mu.Lock()
	defer nw.ev.mu.Unlock()
subs:
	for _, sub := range nw.ev.subs {
		for _, f := range sub.filters {
			if !f(e) {
				continue subs
			}
		}
		sub.st.push(e)
	}
}

// installTaps adapts the deployment's internal trace hooks into typed
// events, once. The Network owns its deployment's trace; nothing else
// writes these hooks.
func (nw *Network) installTaps() {
	if nw.ev.installed {
		return
	}
	nw.ev.installed = true
	tr := nw.d.Trace
	// Stamp events with the reporting node's clock: under a parallel
	// executor it is exact mid-run where the executor-wide clock is only
	// barrier-accurate.
	now := func(node Location) time.Duration { return nw.d.NowAt(node) }
	tr.AgentArrived = func(node Location, id uint16, kind wire.MigKind, from Location) {
		nw.publish(AgentArrived{At: now(node), Node: node, AgentID: id, Mig: MigKind(kind), From: from})
	}
	tr.AgentHalted = func(node Location, id uint16) {
		nw.publish(AgentHalted{At: now(node), Node: node, AgentID: id})
	}
	tr.AgentDied = func(node Location, id uint16, err error) {
		nw.publish(AgentDied{At: now(node), Node: node, AgentID: id, Err: err})
	}
	tr.MigrationStarted = func(node Location, id uint16, kind wire.MigKind, dest Location) {
		nw.publish(MigrationStarted{At: now(node), Node: node, AgentID: id, Mig: MigKind(kind), Dest: dest})
	}
	tr.MigrationDone = func(node Location, id uint16, kind wire.MigKind, dest Location, ok bool) {
		nw.publish(MigrationDone{At: now(node), Node: node, AgentID: id, Mig: MigKind(kind), Dest: dest, OK: ok})
	}
	tr.RemoteDone = func(node Location, id uint16, kind vm.RemoteKind, dest Location, ok bool, elapsed time.Duration) {
		nw.publish(RemoteDone{At: now(node), Node: node, AgentID: id, Op: RemoteKind(kind), Dest: dest, OK: ok, Elapsed: elapsed})
	}
	tr.TupleOut = func(node Location, t Tuple) {
		nw.publish(TupleOut{At: now(node), Node: node, Tuple: t})
	}
	tr.ReactionFired = func(node Location, id uint16, t Tuple) {
		nw.publish(ReactionFired{At: now(node), Node: node, AgentID: id, Tuple: t})
	}
	tr.NodeDied = func(node Location, cause DownCause) {
		nw.publish(NodeDied{At: now(node), Node: node, Cause: cause})
		nw.closeWatchesAt(node)
	}
	tr.NodeRecovered = func(node Location) {
		nw.publish(NodeRecovered{At: now(node), Node: node})
	}
	tr.NodeMoved = func(from, to Location) {
		nw.publish(NodeMoved{At: now(to), Node: to, From: from})
		nw.rehomeWatches(from, to)
	}
	tr.EnergyExhausted = func(node Location, usedJ float64) {
		nw.publish(EnergyExhausted{At: now(node), Node: node, UsedJ: usedJ})
	}
	tr.ReplicaSynced = func(node, peer Location, added, removed int) {
		nw.publish(ReplicaSynced{At: now(node), Node: node, Peer: peer, Added: added, Removed: removed})
	}
	tr.TupleRecovered = func(node Location, t Tuple) {
		nw.publish(TupleRecovered{At: now(node), Node: node, Tuple: t})
	}
}

// closeWatchesAt terminates every watch on a node that just died: the
// volatile space the watch observed is gone, so the channel closes (after
// draining queued matches) instead of dangling open until Network.Close.
func (nw *Network) closeWatchesAt(node Location) {
	nw.ev.mu.Lock()
	defer nw.ev.mu.Unlock()
	kept := nw.ev.watches[:0]
	for _, w := range nw.ev.watches {
		if w.loc == node {
			w.closeWatch()
		} else {
			kept = append(kept, w)
		}
	}
	nw.ev.watches = kept
}

// rehomeWatches follows a relocating mote: its space (tuples, observers)
// moves with it, so watches keep delivering and must die with the node's
// new address, not its old one.
func (nw *Network) rehomeWatches(from, to Location) {
	nw.ev.mu.Lock()
	defer nw.ev.mu.Unlock()
	for _, w := range nw.ev.watches {
		if w.loc == from {
			w.loc = to
		}
	}
}

// registerWatch atomically installs a watch on the node at loc: on an
// open network it runs install (which registers the insert observer and
// returns its remove func) and wires teardown into both Close and the
// node-death tap; on a closed network it only closes the stream, without
// installing anything. Holding the lock across install closes the race
// where a concurrent Close would miss a just-registered observer.
func (nw *Network) registerWatch(loc Location, install func() (remove func()), st *stream[Tuple]) {
	nw.ev.mu.Lock()
	defer nw.ev.mu.Unlock()
	if nw.ev.closed {
		st.close()
		return
	}
	// The death tap must be live for the watch-closing contract even if
	// the host never subscribed via Events.
	nw.installTaps()
	w := &watchReg{loc: loc, remove: install(), st: st}
	nw.ev.watches = append(nw.ev.watches, w)
	nw.ev.closers = append(nw.ev.closers, w.closeWatch)
}
