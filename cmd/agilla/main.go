// Command agilla runs an Agilla network and injects agents into it from
// the command line, standing in for the paper's laptop base-station tool
// (§3.1: "a Java application that allows a user to interact with the WSN
// by injecting agents and performing remote tuple space operations").
//
// Usage:
//
//	agilla -inject prog.agilla -at 3,3 -run 30s
//	agilla -topo ring -nodes 12 -watch            # prints the mote list for -at
//	agilla -topo disk -nodes 20 -side 8 -range 2.5 -seed 3
//	agilla asm prog.agilla -o prog.bin            # assemble + verify
//	agilla asm prog.agilla                        # ... and print the report
//	agilla disasm prog.bin                        # bytecode (or source) -> listing
//	agilla vet -strict -lib examples/agents       # dataflow + energy analysis
//	agilla serve -listen udp:127.0.0.1:7001 \
//	    -peer udp:127.0.0.1:7002=4-6,1-4+100,100  # one process of a split field
//
// The program file uses the assembly dialect of the paper's Figures 2, 8,
// and 13; see the program package. The asm subcommand runs the static
// verifier and reports size, instruction count, and worst-case stack
// depth; disasm accepts either raw bytecode or source text; vet runs the
// full static dataflow and energy analysis (program.Analyze) over source
// files, bytecode, directories, or library agent names and fails on
// error-level findings (see its -budget and -strict flags). After a
// simulation run the tool dumps every node's tuple space and agent
// census.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"

	"github.com/agilla-go/agilla"
	"github.com/agilla-go/agilla/program"
)

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "asm":
		err = runAsm(args[1:])
	case len(args) > 0 && args[0] == "disasm":
		err = runDisasm(args[1:])
	case len(args) > 0 && args[0] == "vet":
		err = runVet(args[1:])
	case len(args) > 0 && args[0] == "serve":
		err = runServe(args[1:])
	default:
		err = run(args)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "agilla: %v\n", err)
		os.Exit(1)
	}
}

// runAsm assembles and verifies a source file, printing the verifier's
// report; with -o it also writes the bytecode.
func runAsm(args []string) error {
	fs := flag.NewFlagSet("agilla asm", flag.ExitOnError)
	out := fs.String("o", "", "write the assembled bytecode to this file")
	quiet := fs.Bool("q", false, "suppress the disassembly listing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: agilla asm [-o out.bin] prog.agilla")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	p, err := program.Parse(string(src))
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes, %d instructions, worst-case stack depth %d/16\n",
		fs.Arg(0), p.Len(), p.Instructions(), p.MaxStackDepth())
	if *out != "" {
		if err := os.WriteFile(*out, p.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	} else if !*quiet {
		fmt.Print(p.Disassemble())
	}
	return nil
}

// runDisasm prints the listing for a program file holding either raw
// bytecode (e.g. from `agilla asm -o`) or assembly source.
func runDisasm(args []string) error {
	fs := flag.NewFlagSet("agilla disasm", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: agilla disasm prog.bin|prog.agilla")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	code := data
	if looksLikeSource(data) {
		p, err := program.Parse(string(data))
		if err != nil {
			return err
		}
		code = p.Bytes()
	}
	// Decode-only on purpose: a disassembler must print anything that
	// decodes, including bytecode the static verifier would refuse to
	// launch (captured mid-experiment, older toolchains, death tests).
	text, err := program.Disassemble(code)
	if err != nil {
		return err
	}
	fmt.Printf("%d bytes\n%s", len(code), text)
	return nil
}

// looksLikeSource distinguishes assembly text from raw bytecode: source
// is valid UTF-8 with no control bytes besides whitespace, while any
// real program's bytecode starts with an opcode that is one.
func looksLikeSource(data []byte) bool {
	if !utf8.Valid(data) {
		return false
	}
	for _, b := range data {
		if b < 0x20 && b != '\n' && b != '\r' && b != '\t' {
			return false
		}
	}
	return true
}

func run(args []string) error {
	fs := flag.NewFlagSet("agilla", flag.ExitOnError)
	var (
		inject = fs.String("inject", "", "agent program file to inject")
		at     = fs.String("at", "1,1", "destination node, e.g. 3,3")
		topo   = fs.String("topo", "grid", "topology: grid, line, ring, disk")
		width  = fs.Int("width", 5, "grid width")
		height = fs.Int("height", 5, "grid height")
		nodes  = fs.Int("nodes", 12, "node count for line/ring/disk topologies")
		side   = fs.Int("side", 8, "region side for the disk topology")
		rng    = fs.Float64("range", 2.5, "radio range for the disk topology")
		seed   = fs.Int64("seed", 1, "simulation seed")
		runFor = fs.Duration("run", 30*time.Second, "virtual time to run after injecting")
		lossy  = fs.Bool("lossy", true, "use the calibrated lossy radio")
		disasm = fs.String("disasm", "", "deprecated: use the disasm subcommand")
		watch  = fs.Bool("watch", false, "print middleware events as they happen")
		fireAt = fs.String("fire", "", "ignite a fire at this node, e.g. 4,4")
		repl   = fs.Bool("replication", false, "replicate tuple spaces by anti-entropy gossip")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *disasm != "" {
		return runDisasm([]string{*disasm})
	}

	var top agilla.Topology
	switch *topo {
	case "grid":
		top = agilla.Grid(*width, *height)
	case "line":
		top = agilla.Line(*nodes)
	case "ring":
		top = agilla.Ring(*nodes)
	case "disk":
		top = agilla.RandomDisk(*nodes, *side, *rng)
	default:
		return fmt.Errorf("-topo: unknown topology %q (want grid, line, ring, disk)", *topo)
	}
	opts := []agilla.Option{agilla.WithTopology(top), agilla.WithSeed(*seed)}
	if !*lossy {
		opts = append(opts, agilla.WithReliableRadio())
	}
	if *repl {
		opts = append(opts, agilla.WithReplication(0, 0)) // defaults: k=2, 500ms
	}
	var fire *agilla.Fire
	if *fireAt != "" {
		fire = agilla.NewFire(30*time.Second, *width, *height)
		opts = append(opts, agilla.WithField(fire))
	}
	nw, err := agilla.New(opts...)
	if err != nil {
		return err
	}
	if fire != nil {
		// Clip the fire to the realized layout, not the grid flags: ring
		// and disk motes can sit outside the -width/-height box.
		b := nw.Bounds()
		fire.Bounds = &b
	}

	finishWatch := func() {}
	if *watch {
		finishWatch = attachWatch(nw)
	}

	fmt.Printf("warming up %s (seed %d)...\n", nw.Topology(), *seed)
	if *topo != "grid" {
		// Non-grid mote placement isn't guessable; print it so the user
		// knows what -at accepts.
		fmt.Printf("motes: %v\n", nw.Locations())
	}
	if err := nw.WarmUp(); err != nil {
		return err
	}

	if fire != nil {
		loc, err := parseLoc(*fireAt)
		if err != nil {
			return fmt.Errorf("-fire: %w", err)
		}
		fire.Ignite(loc, nw.Now())
		fmt.Printf("fire ignited at %v\n", loc)
	}

	if *inject != "" {
		src, err := os.ReadFile(*inject)
		if err != nil {
			return err
		}
		p, err := program.Parse(string(src))
		if err != nil {
			return err
		}
		p = p.WithName(*inject)
		dest, err := parseLoc(*at)
		if err != nil {
			return fmt.Errorf("-at: %w", err)
		}
		ag, err := nw.Launch(p, dest)
		if err != nil {
			return err
		}
		fmt.Printf("injected agent %d (%v) toward %v\n", ag.ID(), p, dest)
		defer func() { fmt.Printf("final agent state: %v\n", ag) }()
	}

	if err := nw.Run(*runFor); err != nil {
		return err
	}
	finishWatch()

	fmt.Printf("\n=== network state at t=%v ===\n", nw.Now())
	for _, loc := range append([]agilla.Location{agilla.Loc(0, 0)}, nw.Locations()...) {
		node := nw.Node(loc)
		if node == nil {
			continue
		}
		agentIDs := node.AgentIDs()
		tuples := nw.Space(loc).All()
		if len(agentIDs) == 0 && len(tuples) <= 4 {
			continue // quiet node: just context tuples
		}
		fmt.Printf("%v  agents=%v led=%d\n", loc, agentIDs, node.LED())
		for _, tup := range tuples {
			fmt.Printf("      %v\n", tup)
		}
	}
	fmt.Printf("total live agents: %d\n", nw.TotalAgents())
	return nil
}

// attachWatch subscribes to the middleware event stream and prints each
// event as it happens. The returned func ends the subscription and waits
// for the printer to drain, so watch lines never interleave with the
// final network dump.
func attachWatch(nw *agilla.Network) (finish func()) {
	events := nw.Events(agilla.OfKind(
		agilla.EventAgentArrived,
		agilla.EventAgentHalted,
		agilla.EventAgentDied,
		agilla.EventRemoteDone,
		agilla.EventReactionFired,
		agilla.EventReplicaSynced,
		agilla.EventTupleRecovered,
	))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range events {
			fmt.Printf("%12v  %-17v  %v\n", e.When(), e.Kind(), e)
		}
	}()
	return func() {
		nw.Close()
		<-done
	}
}

func parseLoc(s string) (agilla.Location, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return agilla.Location{}, fmt.Errorf("want x,y — got %q", s)
	}
	x, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return agilla.Location{}, err
	}
	y, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return agilla.Location{}, err
	}
	return agilla.Loc(int16(x), int16(y)), nil
}
