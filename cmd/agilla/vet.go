package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"github.com/agilla-go/agilla/program"
)

// runVet runs the static dataflow and energy analysis (program.Analyze)
// over agent programs and prints the findings, positioned by source line
// where available. Targets may be assembly source files, raw bytecode
// files, directories (searched recursively for .agilla/.asm files), or
// the names of library agents; -lib adds every library agent.
//
// Exit is nonzero when any program fails to verify, carries error-level
// findings, or — under -budget — cannot be certified within the given
// per-burst joule budget. With -strict, warnings (dead code, unreachable
// reactions, unbounded energy) also fail.
func runVet(args []string) error {
	flags := flag.NewFlagSet("agilla vet", flag.ExitOnError)
	budget := flags.Float64("budget", 0, "reject programs whose per-burst energy bound exceeds this many joules (0 = no cap)")
	strict := flags.Bool("strict", false, "treat warnings as failures")
	lib := flags.Bool("lib", false, "also vet every library agent")
	if err := flags.Parse(args); err != nil {
		return err
	}
	if flags.NArg() == 0 && !*lib {
		return fmt.Errorf("usage: agilla vet [-budget J] [-strict] [-lib] [prog.agilla|prog.bin|dir|library-name ...]")
	}

	type target struct {
		name string
		prog *program.Program
		err  error // load/verify failure
	}
	var targets []target

	addFile := func(path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			targets = append(targets, target{name: path, err: err})
			return
		}
		var p *program.Program
		if looksLikeSource(data) {
			p, err = program.Parse(string(data))
		} else {
			p, err = program.FromBytes(data)
		}
		targets = append(targets, target{name: path, prog: p, err: err})
	}

	library := make(map[string]*program.Program)
	for _, e := range program.Library() {
		library[e.Name] = e.Program
	}

	for _, arg := range flags.Args() {
		if p, ok := library[arg]; ok {
			targets = append(targets, target{name: "library:" + arg, prog: p})
			continue
		}
		info, err := os.Stat(arg)
		switch {
		case err != nil:
			targets = append(targets, target{name: arg, err: fmt.Errorf("not a file, directory, or library agent: %w", err)})
		case info.IsDir():
			err := filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if ext := filepath.Ext(path); !d.IsDir() && (ext == ".agilla" || ext == ".asm") {
					addFile(path)
				}
				return nil
			})
			if err != nil {
				targets = append(targets, target{name: arg, err: err})
			}
		default:
			addFile(arg)
		}
	}
	if *lib {
		for _, e := range program.Library() {
			targets = append(targets, target{name: "library:" + e.Name, prog: e.Program})
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("vet: no agent programs found")
	}

	failed := 0
	for _, t := range targets {
		if t.err != nil {
			fmt.Printf("%s: FAIL\n    %v\n", t.name, t.err)
			failed++
			continue
		}
		rep := program.Analyze(t.prog)
		bad := rep.HasErrors() ||
			(*strict && len(rep.Findings) > 0) ||
			(*budget > 0 && (rep.EnergyUnbounded || rep.EnergyBoundJ() > *budget))
		verdict := "ok"
		if bad {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%s: %s\n    %s\n", t.name, verdict,
			strings.ReplaceAll(rep.String(), "\n", "\n    "))
		if *budget > 0 && !rep.EnergyUnbounded && rep.EnergyBoundJ() > *budget {
			fmt.Printf("    over budget: %.3g J per burst > %.3g J\n", rep.EnergyBoundJ(), *budget)
		}
	}
	if failed > 0 {
		return fmt.Errorf("vet: %d of %d programs failed", failed, len(targets))
	}
	return nil
}
