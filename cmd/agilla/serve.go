package main

// The serve subcommand: run one process's share of a field split across
// several processes (the real-wire distributed runtime). Every process is
// given the SAME topology and seed; -peer flags carve out the locations
// other processes own, and the transport bridge relays border frames over
// UDP or TCP (or the in-memory loopback, for single-process
// experiments). Outbound border frames are coalesced into batches on the
// wire; each status line reports the batching payoff and any frames lost
// to send-queue backpressure.
//
// A two-terminal split of the 6x4 grid down the middle:
//
//	agilla serve -listen udp:127.0.0.1:7001 \
//	    -peer udp:127.0.0.1:7002=4-6,1-4+100,100 \
//	    -topo grid -width 6 -height 4 -seed 11 \
//	    -inject examples/agents/ping.agilla -at 6,4
//
//	agilla serve -listen udp:127.0.0.1:7002 \
//	    -peer udp:127.0.0.1:7001=1-3,1-4+0,0 \
//	    -topo grid -width 6 -height 4 -seed 11 -base 100,100
//
// The first terminal keeps the default base station at (0,0) and owns
// columns 1-3; the second relocates its base off-field to (100,100) and
// owns columns 4-6. Each -peer lists what the OTHER process serves —
// its motes and its base location — so frames addressed there cross the
// wire. Status lines name frame kinds (beacon, migrate, remote-ts, ...)
// rather than raw codes.

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/agilla-go/agilla"
	"github.com/agilla-go/agilla/program"
)

// peerFlag accumulates repeated -peer specs.
type peerFlag []agilla.BridgePeer

func (p *peerFlag) String() string { return fmt.Sprint(*p) }

func (p *peerFlag) Set(s string) error {
	peer, err := parsePeer(s)
	if err != nil {
		return err
	}
	*p = append(*p, peer)
	return nil
}

// parsePeer parses "addr=locs" where locs is a +-separated list of
// location ranges: "4-6,1-4" is the rectangle x in 4..6, y in 1..4, and
// "100,100" is the single location (100,100).
func parsePeer(s string) (agilla.BridgePeer, error) {
	addr, locs, ok := strings.Cut(s, "=")
	if !ok || addr == "" || locs == "" {
		return agilla.BridgePeer{}, fmt.Errorf("-peer: want addr=xrange,yrange[+...] — got %q", s)
	}
	peer := agilla.BridgePeer{Addr: addr}
	for _, elem := range strings.Split(locs, "+") {
		parts := strings.Split(elem, ",")
		if len(parts) != 2 {
			return agilla.BridgePeer{}, fmt.Errorf("-peer: range %q: want xrange,yrange", elem)
		}
		x1, x2, err := parseSpan(parts[0])
		if err != nil {
			return agilla.BridgePeer{}, fmt.Errorf("-peer: range %q: %w", elem, err)
		}
		y1, y2, err := parseSpan(parts[1])
		if err != nil {
			return agilla.BridgePeer{}, fmt.Errorf("-peer: range %q: %w", elem, err)
		}
		for y := y1; y <= y2; y++ {
			for x := x1; x <= x2; x++ {
				peer.Locations = append(peer.Locations, agilla.Loc(int16(x), int16(y)))
			}
		}
	}
	return peer, nil
}

// parseSpan parses "4" or "4-6" into an inclusive span.
func parseSpan(s string) (lo, hi int, err error) {
	a, b, ranged := strings.Cut(strings.TrimSpace(s), "-")
	if lo, err = strconv.Atoi(strings.TrimSpace(a)); err != nil {
		return 0, 0, err
	}
	if !ranged {
		return lo, lo, nil
	}
	if hi, err = strconv.Atoi(strings.TrimSpace(b)); err != nil {
		return 0, 0, err
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("span %q is backwards", s)
	}
	return lo, hi, nil
}

// wireSummary renders the transport-level counters across all peers for
// a status line: throughput, coalescing payoff, and — most importantly —
// frames lost to send-queue backpressure (drop-oldest), which the border
// counters alone cannot show.
func wireSummary(peers map[string]agilla.TransportPeerStats) string {
	var sum agilla.TransportPeerStats
	for _, st := range peers {
		sum.Sent += st.Sent
		sum.SentBytes += st.SentBytes
		sum.Batches += st.Batches
		sum.Dropped += st.Dropped
		sum.Recv += st.Recv
		sum.Malformed += st.Malformed
		sum.SendErrs += st.SendErrs
	}
	s := fmt.Sprintf("sent %d in %d batches (%.1f frames/batch), recv %d",
		sum.Sent, sum.Batches, sum.FramesPerBatch(), sum.Recv)
	if sum.Dropped > 0 {
		s += fmt.Sprintf(", DROPPED %d (send-queue overflow)", sum.Dropped)
	}
	if sum.Malformed > 0 {
		s += fmt.Sprintf(", malformed %d", sum.Malformed)
	}
	if sum.SendErrs > 0 {
		s += fmt.Sprintf(", send errors %d", sum.SendErrs)
	}
	return s
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("agilla serve", flag.ExitOnError)
	var peers peerFlag
	var (
		listen  = fs.String("listen", "udp:127.0.0.1:7001", "this process's transport address (udp:host:port, tcp:host:port, or loop:name)")
		topo    = fs.String("topo", "grid", "topology: grid, line, ring, disk (identical in every process)")
		width   = fs.Int("width", 5, "grid width")
		height  = fs.Int("height", 5, "grid height")
		nodes   = fs.Int("nodes", 12, "node count for line/ring/disk topologies")
		side    = fs.Int("side", 8, "region side for the disk topology")
		rng     = fs.Float64("range", 2.5, "radio range for the disk topology")
		seed    = fs.Int64("seed", 1, "simulation seed (identical in every process)")
		lossy   = fs.Bool("lossy", true, "use the calibrated lossy radio")
		repl    = fs.Bool("replication", false, "replicate tuple spaces by anti-entropy gossip")
		base    = fs.String("base", "", "relocate this process's base station, e.g. 100,100 (required when a peer owns 0,0)")
		quantum = fs.Duration("quantum", 0, "virtual time between border pumps (default 5ms)")
		runFor  = fs.Duration("run", 0, "virtual time to serve before dumping state (0 = forever)")
		status  = fs.Duration("status", 10*time.Second, "virtual time between status lines")
		inject  = fs.String("inject", "", "agent program file to inject after warm-up")
		at      = fs.String("at", "", "destination node for -inject, e.g. 6,4 (may be peer-owned)")
		watch   = fs.Bool("watch", false, "print middleware events as they happen")
	)
	fs.Var(&peers, "peer", "peer process: addr=locranges, e.g. udp:host:7002=4-6,1-4+100,100 (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(peers) == 0 {
		return fmt.Errorf("serve needs at least one -peer")
	}

	var top agilla.Topology
	switch *topo {
	case "grid":
		top = agilla.Grid(*width, *height)
	case "line":
		top = agilla.Line(*nodes)
	case "ring":
		top = agilla.Ring(*nodes)
	case "disk":
		top = agilla.RandomDisk(*nodes, *side, *rng)
	default:
		return fmt.Errorf("-topo: unknown topology %q (want grid, line, ring, disk)", *topo)
	}
	cfg := agilla.BridgeConfig{Listen: *listen, Peers: peers, Quantum: *quantum}
	if *base != "" {
		loc, err := parseLoc(*base)
		if err != nil {
			return fmt.Errorf("-base: %w", err)
		}
		cfg.BaseLoc = &loc
	}
	opts := []agilla.Option{
		agilla.WithTopology(top),
		agilla.WithSeed(*seed),
		agilla.WithTransportBridge(cfg),
	}
	if !*lossy {
		opts = append(opts, agilla.WithReliableRadio())
	}
	if *repl {
		opts = append(opts, agilla.WithReplication(0, 0))
	}
	nw, err := agilla.New(opts...)
	if err != nil {
		return err
	}
	br := nw.Bridge()
	fmt.Printf("serving %d motes of %s (seed %d) on %s, %d peer(s)\n",
		len(nw.Locations()), nw.Topology(), *seed, br.LocalAddr(), len(peers))
	fmt.Printf("local motes: %v\n", nw.Locations())

	finishWatch := func() {}
	if *watch {
		finishWatch = attachWatch(nw)
	}
	defer finishWatch()

	fmt.Println("warming up (cross-border beacons need the peers running)...")
	if err := nw.WarmUp(); err != nil {
		return err
	}

	if *inject != "" {
		src, err := os.ReadFile(*inject)
		if err != nil {
			return err
		}
		p, err := program.Parse(string(src))
		if err != nil {
			return err
		}
		dest, err := parseLoc(*at)
		if err != nil {
			return fmt.Errorf("-at: %w", err)
		}
		ag, err := nw.Launch(p.WithName(*inject), dest)
		if err != nil {
			return err
		}
		fmt.Printf("injected agent %d (%v) toward %v\n", ag.ID(), p, dest)
	}

	for elapsed := time.Duration(0); *runFor <= 0 || elapsed < *runFor; {
		step := *status
		if *runFor > 0 && elapsed+step > *runFor {
			step = *runFor - elapsed
		}
		if err := nw.Run(step); err != nil {
			return err
		}
		elapsed += step
		fmt.Printf("t=%-8v agents=%-3d border: %v; wire: %s\n",
			nw.Now(), nw.TotalAgents(), br.Stats(), wireSummary(br.TransportStats()))
	}

	fmt.Printf("\n=== local state at t=%v ===\n", nw.Now())
	for _, loc := range nw.Locations() {
		node := nw.Node(loc)
		if node == nil {
			continue
		}
		agentIDs := node.AgentIDs()
		tuples := nw.Space(loc).All()
		if len(agentIDs) == 0 && len(tuples) <= 4 {
			continue
		}
		fmt.Printf("%v  agents=%v\n", loc, agentIDs)
		for _, tup := range tuples {
			fmt.Printf("      %v\n", tup)
		}
	}
	return br.Close()
}
