// Command agilla-bench regenerates every table and figure from the
// paper's evaluation (§4), the case study (§5), and the design-choice
// ablations, printing paper-style rows and series.
//
// Usage:
//
//	agilla-bench -exp all
//	agilla-bench -exp fig9 -trials 100 -seed 7
//	agilla-bench -exp fig10,fig11,fig12,fig5,memory,speed,casestudy,mate
//	agilla-bench -exp ablate
//
// Experiments (see DESIGN.md §3 for the index):
//
//	fig9      reliability of smove vs rout across 1-5 hops  (E1)
//	fig10     latency of smove vs rout across 1-5 hops      (E2)
//	fig11     one-hop latency of every remote operation     (E3)
//	fig12     local instruction latency classes             (E4)
//	fig5      migration message formats and sizes           (E5)
//	memory    the 3.59KB SRAM budget decomposition          (E6)
//	speed     maximum migration rate / tracking speed       (E7)
//	casestudy the fire detection and tracking scenario      (E8)
//	ensemble  the fire scenario swept over -runs seeds,
//	          fanned out across cores by the scenario
//	          runner (Ctrl-C cancels outstanding runs)
//	mate      reprogramming cost vs a Maté-style VM          (E9)
//	ablate    protocol and channel-model ablations
//	scale     kernel event throughput on grids from 5×5 to
//	          100×100, swept over worker counts up to
//	          -workers; -json writes the machine-readable
//	          rows (BENCH_scale.json schema: scenario,
//	          nodes, workers, events, events_per_sec,
//	          wall_secs, hash, ...). Benchmarks the kernel
//	          rather than a paper figure, so it is not part
//	          of "-exp all" — request it explicitly.
//	churn     the dynamic-world benchmark: grids under a
//	          scripted kill/revive/move schedule with the
//	          energy model active, swept over -workers like
//	          scale; -json writes BENCH_churn.json rows.
//	          With -replication it adds gossip-replicated
//	          rows beside the baseline ones, quantifying
//	          the tuple-survival and remote-lookup gains
//	          under the identical schedule and seed.
//	          Also opt-in, for the same reason as scale.
//	vm        execution-backend comparison: the same
//	          compute workload under the seed per-event
//	          interpreter, the burst engine, and the
//	          compiled-closure backend; asserts identical
//	          instruction streams and hashes, reports the
//	          wall-clock speedup; -json writes
//	          BENCH_vm.json rows. Opt-in like scale.
//	wire      transport throughput for the distributed
//	          runtime: a fixed migration+gossip frame mix
//	          through the in-memory loopback, localhost
//	          UDP, and localhost TCP transports, with the
//	          wire transports coalescing frames into
//	          batches; -json writes BENCH_wire.json rows
//	          (transport, frames, bytes, received, batches,
//	          frames_per_batch, wall_secs, frames_per_sec,
//	          bytes_per_sec). Opt-in like scale and churn.
//	          tools/benchdiff compares two such snapshots
//	          with a tolerance band for the wall-clock
//	          columns.
//
// With -json PATH and a single JSON-capable experiment selected, PATH is
// the output file. With both scale and churn selected, PATH is treated
// as a directory and receives BENCH_scale.json and BENCH_churn.json —
// the artifact names CI uploads to track the perf trajectory.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/agilla-go/agilla/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: fig9,fig10,fig11,fig12,fig5,memory,speed,casestudy,ensemble,mate,ablate,scale,churn,vm,wire,all")
	trials := flag.Int("trials", 100, "trials per data point")
	seed := flag.Int64("seed", 7, "simulation seed")
	runs := flag.Int("runs", 8, "seeds for the ensemble experiment")
	quick := flag.Bool("quick", false, "reduced trial counts for a fast pass")
	workers := flag.Int("workers", 4, "max kernel parallelism the scale/churn experiments sweep up to")
	jsonPath := flag.String("json", "", "write scale/churn/wire rows as JSON: a file when one such experiment is selected, a directory (BENCH_scale.json, BENCH_churn.json, BENCH_wire.json) when several are")
	replication := flag.Bool("replication", false, "add gossip-replicated rows to the churn sweep, beside the baseline rows")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "agilla-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "agilla-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "agilla-bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle: profile live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "agilla-bench: memprofile: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// After the first Ctrl-C, unregister the handler so a second one
	// kills the process the default way.
	context.AfterFunc(ctx, stop)

	cfg := experiments.Config{Trials: *trials, Seed: *seed, Quick: *quick, Workers: *workers, Replication: *replication}

	want := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	ran := 0

	section := func(names ...string) bool {
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return all
	}
	start := time.Now()

	if section("fig9", "fig10") {
		run(ctx, &ran, func() (fmt.Stringer, error) { return experiments.Fig9and10(cfg) })
	}
	if section("fig11") {
		run(ctx, &ran, func() (fmt.Stringer, error) { return experiments.Fig11(cfg) })
	}
	if section("fig12") {
		run(ctx, &ran, func() (fmt.Stringer, error) { return experiments.Fig12(cfg) })
	}
	if section("fig5") {
		run(ctx, &ran, func() (fmt.Stringer, error) { return experiments.Fig5Sizes() })
	}
	if section("memory") {
		run(ctx, &ran, func() (fmt.Stringer, error) { return experiments.Memory(), nil })
	}
	if section("speed") {
		run(ctx, &ran, func() (fmt.Stringer, error) { return experiments.Speed(cfg) })
	}
	if section("casestudy") {
		run(ctx, &ran, func() (fmt.Stringer, error) { return experiments.CaseStudy(cfg) })
	}
	if section("ensemble") {
		run(ctx, &ran, func() (fmt.Stringer, error) { return experiments.CaseStudyEnsemble(ctx, cfg, *runs) })
	}
	if section("mate") {
		run(ctx, &ran, func() (fmt.Stringer, error) { return experiments.MateCompare(cfg) })
	}
	if section("ablate") {
		run(ctx, &ran, func() (fmt.Stringer, error) { return experiments.AblationEndToEnd(cfg) })
		run(ctx, &ran, func() (fmt.Stringer, error) { return experiments.AblationLossModel(cfg) })
		run(ctx, &ran, func() (fmt.Stringer, error) { return experiments.AblationRetries(cfg) })
	}
	// scale and churn benchmark the kernel rather than reproducing a
	// figure, so they are opt-in: "-exp all" keeps meaning "every figure
	// and table". With both selected, -json is a directory receiving the
	// BENCH_*.json artifacts; with one, it is the output file.
	jsonFile := func(name string) (string, error) {
		if *jsonPath == "" {
			return "", nil
		}
		jsonable := 0
		for _, n := range []string{"scale", "churn", "vm", "wire"} {
			if want[n] {
				jsonable++
			}
		}
		if jsonable < 2 {
			return *jsonPath, nil
		}
		if err := os.MkdirAll(*jsonPath, 0o755); err != nil {
			return "", fmt.Errorf("json dir %s: %w", *jsonPath, err)
		}
		return filepath.Join(*jsonPath, name), nil
	}
	type jsonResult interface {
		fmt.Stringer
		JSON() ([]byte, error)
	}
	runJSON := func(name string, f func() (jsonResult, error)) {
		run(ctx, &ran, func() (fmt.Stringer, error) {
			res, err := f()
			if err != nil {
				return nil, err
			}
			path, err := jsonFile(name)
			if err != nil {
				return nil, err
			}
			if path != "" {
				data, err := res.JSON()
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					return nil, fmt.Errorf("write %s: %w", path, err)
				}
			}
			return res, nil
		})
	}
	if want["scale"] {
		runJSON("BENCH_scale.json", func() (jsonResult, error) { return experiments.Scale(cfg) })
	}
	if want["churn"] {
		runJSON("BENCH_churn.json", func() (jsonResult, error) { return experiments.Churn(cfg) })
	}
	if want["vm"] {
		runJSON("BENCH_vm.json", func() (jsonResult, error) { return experiments.VM(cfg) })
	}
	if want["wire"] {
		runJSON("BENCH_wire.json", func() (jsonResult, error) { return experiments.Wire(cfg) })
	}

	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "agilla-bench: interrupted")
		os.Exit(130)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "agilla-bench: no experiment matches %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("\n%d experiment group(s) in %.1fs (wall clock)\n", ran, time.Since(start).Seconds())
}

// run executes one experiment group unless the context was cancelled; the
// experiments themselves are uninterruptible except for the ensemble,
// which polls the context internally.
func run(ctx context.Context, ran *int, f func() (fmt.Stringer, error)) {
	if ctx.Err() != nil {
		return
	}
	res, err := f()
	if err != nil {
		fmt.Fprintf(os.Stderr, "agilla-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res)
	*ran++
}
