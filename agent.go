package agilla

import (
	"errors"
	"fmt"
	"time"
)

// Agent is a handle on one injected agent. It tracks the agent across the
// whole network — through multi-hop migrations, clones, and death —
// replacing the uint16-ID-plus-polling pattern of the old API. Handles
// are cheap (an ID plus a network pointer) and remain valid after the
// agent dies, reporting its final state.
//
// The duplicate-tolerant failure semantics of the migration protocol
// (§3.2 of the paper) mean a failed handoff can leave two live copies
// under one ID; the handle then follows the copy that last made progress.
type Agent struct {
	nw *Network
	id uint16
}

// Agent returns a handle for an agent ID obtained elsewhere (a trace
// callback, Node.AgentIDs). The handle is valid even if the ID is
// unknown; its state then reads as zero values.
func (nw *Network) Agent(id uint16) *Agent { return &Agent{nw: nw, id: id} }

// Agents returns handles for every agent the deployment has ever tracked,
// sorted by ID (including halted and died agents).
func (nw *Network) Agents() []*Agent {
	recs := nw.d.AgentRecords()
	out := make([]*Agent, len(recs))
	for i, r := range recs {
		out[i] = &Agent{nw: nw, id: r.ID}
	}
	return out
}

// ID returns the network-unique agent ID.
func (a *Agent) ID() uint16 { return a.id }

// Info returns the full tracked record.
func (a *Agent) Info() AgentInfo {
	info, _ := a.nw.d.AgentRecord(a.id)
	return info
}

// Location returns the last node known to host the agent. While a
// multi-hop transfer is in flight this lags at the hop that last reported
// progress.
func (a *Agent) Location() Location { return a.Info().Loc }

// State returns the agent's live engine state (ready, sleeping, waiting,
// blocked, migrating, remote, dead).
func (a *Agent) State() AgentState { return a.Info().State }

// Hops returns how many hop transfers the agent has completed, counting
// every relay hop of multi-hop moves and the initial injection hops.
func (a *Agent) Hops() int { return a.Info().Hops }

// Clones returns how many clones this agent has spawned so far.
func (a *Agent) Clones() int { return a.Info().Clones }

// Parent returns the handle of the agent this one was cloned from, or nil
// for original (injected) agents.
func (a *Agent) Parent() *Agent {
	info := a.Info()
	if info.Parent == 0 {
		return nil
	}
	return &Agent{nw: a.nw, id: info.Parent}
}

// Done reports whether the agent's life is over: halted, died with an
// error, or killed.
func (a *Agent) Done() bool { return a.Info().Done() }

// Alive reports whether the agent still runs somewhere (or is in flight).
func (a *Agent) Alive() bool {
	info, ok := a.nw.d.AgentRecord(a.id)
	return ok && !info.Done()
}

// Halted reports whether the agent ended by voluntarily executing halt.
func (a *Agent) Halted() bool { return a.Info().Halted }

// Err returns the fatal error for an agent that died, or nil.
func (a *Agent) Err() error { return a.Info().Err }

// Host returns the node currently hosting the agent, or nil while it is
// in flight or after it died.
func (a *Agent) Host() *Node { return a.nw.d.FindAgent(a.id) }

// Kill forcibly reclaims the agent wherever it currently runs, reporting
// whether a live copy was found.
func (a *Agent) Kill() bool {
	n := a.nw.d.FindAgent(a.id)
	if n == nil {
		return false
	}
	return n.KillAgent(a.id)
}

// Wait advances the simulation until pred(a) is true or limit of virtual
// time elapses, reporting whether pred became true. The predicate is
// checked after every simulation event, so transitions cannot be missed:
//
//	arrived, err := ag.Wait(func(a *agilla.Agent) bool {
//		return a.Location() == dest
//	}, time.Minute)
//
// If the agent dies because its host node went down (a scripted kill,
// churn, or battery exhaustion) before pred becomes true, Wait returns
// (false, ErrNodeDown) immediately instead of idling out the limit —
// waiting on a condition a dead agent can never satisfy is a scripting
// bug worth a typed error. A pred that is itself satisfied by the death
// (e.g. WaitDone's) still wins: Wait reports true.
func (a *Agent) Wait(pred func(*Agent) bool, limit time.Duration) (bool, error) {
	if pred == nil {
		return false, fmt.Errorf("agilla: Agent.Wait needs a predicate")
	}
	matched := false
	hostDied := func() bool {
		info, ok := a.nw.d.AgentRecord(a.id)
		return ok && info.State == AgentDead && errors.Is(info.Err, ErrNodeDown)
	}
	ok, err := a.nw.RunUntil(func() bool {
		if pred(a) {
			matched = true
			return true
		}
		return hostDied()
	}, limit)
	if err != nil {
		return false, err
	}
	if matched || pred(a) {
		return true, nil
	}
	if ok || hostDied() {
		// The run stopped because the agent died with its node.
		return false, ErrNodeDown
	}
	return false, nil
}

// WaitDone advances the simulation until the agent's life is over (halt,
// error, or kill), reporting whether that happened within limit.
func (a *Agent) WaitDone(limit time.Duration) (bool, error) {
	return a.Wait(func(ag *Agent) bool { return ag.Done() }, limit)
}

// String renders the handle for diagnostics.
func (a *Agent) String() string {
	info, ok := a.nw.d.AgentRecord(a.id)
	if !ok {
		return fmt.Sprintf("agent %d (untracked)", a.id)
	}
	return fmt.Sprintf("agent %d at %v (%v, %d hops, %d clones)",
		a.id, info.Loc, info.State, info.Hops, info.Clones)
}
