package agilla_test

import (
	"testing"
	"time"

	"github.com/agilla-go/agilla"
)

func TestQuickstartFlow(t *testing.T) {
	nw, err := agilla.NewNetwork(agilla.Options{Width: 3, Height: 3, Reliable: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Inject(`
		pushc 7
		putled
		pushn hi
		loc
		pushc 2
		out
		halt
	`, agilla.Loc(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := nw.Read(agilla.Loc(2, 2), agilla.Tmpl(agilla.Str("hi"), agilla.TypeV(3)))
	if !ok {
		t.Fatalf("greeting tuple missing; space: %v", nw.Tuples(agilla.Loc(2, 2)))
	}
	if got.Fields[1].Loc() != agilla.Loc(2, 2) {
		t.Errorf("wrong location in tuple: %v", got)
	}
	if nw.Node(agilla.Loc(2, 2)).LED() != 7 {
		t.Error("LED not set")
	}
}

func TestInjectBadProgram(t *testing.T) {
	nw, err := agilla.NewNetwork(agilla.Options{Width: 2, Height: 1, Reliable: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Inject("frobnicate", agilla.Loc(1, 1)); err == nil {
		t.Error("bad source must fail to inject")
	}
	if _, err := nw.Inject("halt", agilla.Loc(9, 9)); err == nil {
		t.Error("unknown destination must fail")
	}
}

// TestTupleHelpers exercises the deprecated Network shims, which must
// keep delegating to the Space handles until they are removed.
func TestTupleHelpers(t *testing.T) {
	nw, err := agilla.NewNetwork(agilla.Options{Width: 2, Height: 1, Reliable: true})
	if err != nil {
		t.Fatal(err)
	}
	loc := agilla.Loc(1, 1)
	if err := nw.Out(loc, agilla.T(agilla.Int(5), agilla.Str("ab"))); err != nil {
		t.Fatal(err)
	}
	if n := nw.Count(loc, agilla.Tmpl(agilla.TypeV(1), agilla.TypeV(2))); n != 1 {
		t.Errorf("Count = %d", n)
	}
	got, ok := nw.Take(loc, agilla.Tmpl(agilla.Int(5), agilla.Str("ab")))
	if !ok || got.Fields[0].A != 5 {
		t.Errorf("Take = %v,%v", got, ok)
	}
	if _, ok := nw.Read(loc, agilla.Tmpl(agilla.Int(5), agilla.Str("ab"))); ok {
		t.Error("tuple should be gone after Take")
	}
	if got, want := len(nw.Tuples(loc)), len(nw.Space(loc).All()); got != want {
		t.Errorf("Tuples shim = %d entries, Space.All = %d", got, want)
	}
}

func TestRemoteRead(t *testing.T) {
	nw, err := agilla.NewNetwork(agilla.Options{Width: 3, Height: 1, Reliable: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	if err := nw.Out(agilla.Loc(3, 1), agilla.T(agilla.Int(77))); err != nil {
		t.Fatal(err)
	}
	tup, ok, err := nw.RemoteRead(agilla.Loc(3, 1), agilla.Tmpl(agilla.Int(77)))
	if err != nil || !ok {
		t.Fatalf("RemoteRead = %v, %v, %v", tup, ok, err)
	}
}

func TestFireEnvironment(t *testing.T) {
	fire := agilla.NewFire(time.Minute, 3, 3)
	nw, err := agilla.NewNetwork(agilla.Options{Width: 3, Height: 3, Reliable: true, Field: fire, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	fire.Ignite(agilla.Loc(2, 2), nw.Now())

	// An agent sensing at the burning node reads >200.
	if _, err := nw.Inject(`
		pushc TEMPERATURE
		sense
		pushc 1
		out
		halt
	`, agilla.Loc(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, ok := nw.Read(agilla.Loc(2, 2), agilla.Tmpl(agilla.TypeV(agilla.TypeOfSensor(agilla.SensorTemperature))))
	if !ok {
		t.Fatal("reading tuple missing")
	}
	if got.Fields[0].B <= 200 {
		t.Errorf("burning node reads %d, want >200", got.Fields[0].B)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() string {
		nw, err := agilla.NewNetwork(agilla.Options{Width: 3, Height: 3, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.WarmUp(); err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Inject("pushn hi\nloc\npushc 2\nout\nhalt", agilla.Loc(3, 3)); err != nil {
			t.Fatal(err)
		}
		if err := nw.Run(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, loc := range nw.Locations() {
			for _, tup := range nw.Space(loc).All() {
				out += loc.String() + tup.String() + ";"
			}
		}
		return out
	}
	if a, b := run(), run(); a != b {
		t.Errorf("two identical seeded runs diverged:\n%s\n%s", a, b)
	}
}

func TestAssembleDisassemble(t *testing.T) {
	code, err := agilla.Assemble("pushc 1\npop\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	text, err := agilla.Disassemble(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(text) == 0 {
		t.Error("empty disassembly")
	}
}
