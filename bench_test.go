package agilla_test

// One benchmark per paper artifact. Each b.N iteration regenerates the
// experiment at reduced trial counts (the full-trial harness is
// cmd/agilla-bench); ns/op therefore measures the wall-clock cost of one
// complete experiment regeneration.
//
//	go test -bench=. -benchmem

import (
	"testing"

	"github.com/agilla-go/agilla"
	"github.com/agilla-go/agilla/internal/experiments"
)

func benchCfg(seed int64) experiments.Config {
	return experiments.Config{Trials: 10, Seed: seed, Quick: true}
}

// BenchmarkFig9And10 regenerates Figures 9 and 10: reliability and latency
// of smove vs rout across 1-5 hops (E1, E2).
func BenchmarkFig9And10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9and10(benchCfg(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if r.Smove[0].Reliability.Trials == 0 {
			b.Fatal("no trials ran")
		}
	}
}

// BenchmarkFig11 regenerates Figure 11: one-hop latency of every remote
// tuple space and migration instruction (E3).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchCfg(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if r.Latency["smove"].N() == 0 {
			b.Fatal("no smove samples")
		}
	}
}

// BenchmarkFig12 regenerates Figure 12: local instruction latency classes
// (E4).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchCfg(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) != len(experiments.Fig12Ops) {
			b.Fatal("missing instructions")
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: the migration message sizes (E5).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5Sizes()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 5 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkMemory regenerates the E6 SRAM budget table.
func BenchmarkMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Memory(); r.Total != r.PaperData {
			b.Fatalf("budget drifted: %d", r.Total)
		}
	}
}

// BenchmarkSpeed regenerates the E7 migration-rate bound.
func BenchmarkSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Speed(benchCfg(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if r.PerHop <= 0 {
			b.Fatal("no hops measured")
		}
	}
}

// BenchmarkCaseStudy regenerates the E8 fire scenario.
func BenchmarkCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.CaseStudy(experiments.Config{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Detected {
			b.Fatal("fire not detected")
		}
	}
}

// BenchmarkMateCompare regenerates the E9 reprogramming-cost comparison.
func BenchmarkMateCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.MateCompare(experiments.Config{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 4 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkAblationLossModel regenerates the burst-vs-Bernoulli ablation.
func BenchmarkAblationLossModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationLossModel(benchCfg(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRetries regenerates the retransmission-budget sweep.
func BenchmarkAblationRetries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRetries(benchCfg(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEndToEnd regenerates the hop-by-hop vs end-to-end sweep.
func BenchmarkAblationEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEndToEnd(benchCfg(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomDiskMigration measures a complete scenario run on a
// non-grid topology: build a 16-mote random unit-disk deployment, warm it
// up, and migrate a courier agent from the base station to the mote
// farthest from it over the calibrated lossy radio. It extends the perf
// trajectory beyond the grid hot path: irregular neighbor counts change
// beacon load, and greedy routing works on real Euclidean geometry
// instead of Manhattan steps.
func BenchmarkRandomDiskMigration(b *testing.B) {
	sc := &agilla.Scenario{
		Name:     "disk-migration",
		Topology: agilla.RandomDisk(16, 8, 2.5),
		Play:     playFarthestCourier,
	}
	delivered := 0
	for i := 0; i < b.N; i++ {
		m, err := sc.Run(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if m.Completed {
			delivered++
		}
	}
	b.ReportMetric(float64(delivered)/float64(b.N), "delivered/op")
}
