package agilla

import "github.com/agilla-go/agilla/internal/core"

// DeploymentForTest exposes the internal deployment so package tests can
// reach the radio medium and per-node state without widening the public
// API.
func DeploymentForTest(nw *Network) *core.Deployment { return nw.d }
