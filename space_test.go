package agilla_test

// Tests for the per-node tuple space handles: direct probes and Watch
// subscriptions.

import (
	"testing"
	"time"

	"github.com/agilla-go/agilla"
)

func TestSpaceHandleBasics(t *testing.T) {
	nw := reliableGrid(t, 2, 1)
	sp := nw.Space(agilla.Loc(2, 1))
	if !sp.Exists() || sp.Loc() != agilla.Loc(2, 1) {
		t.Fatalf("handle wrong: exists=%v loc=%v", sp.Exists(), sp.Loc())
	}

	if err := sp.Out(agilla.T(agilla.Int(5), agilla.Str("ab"))); err != nil {
		t.Fatal(err)
	}
	if n := sp.Count(agilla.Tmpl(agilla.TypeV(1), agilla.TypeV(2))); n != 1 {
		t.Errorf("Count = %d", n)
	}
	got, ok := sp.Rdp(agilla.Tmpl(agilla.Int(5), agilla.Str("ab")))
	if !ok || got.Fields[0].A != 5 {
		t.Errorf("Rdp = %v, %v", got, ok)
	}
	if got, ok := sp.Inp(agilla.Tmpl(agilla.Int(5), agilla.Str("ab"))); !ok || got.Fields[1].S != "ab" {
		t.Errorf("Inp = %v, %v", got, ok)
	}
	if _, ok := sp.Rdp(agilla.Tmpl(agilla.Int(5), agilla.Str("ab"))); ok {
		t.Error("tuple should be gone after Inp")
	}
	// All returns the context tuples too; the first is <"loc",(2,1)>.
	all := sp.All()
	if len(all) == 0 || all[0].Fields[0].S != "loc" {
		t.Errorf("All = %v", all)
	}
}

func TestSpaceHandleMissingNode(t *testing.T) {
	nw := reliableGrid(t, 2, 1)
	sp := nw.Space(agilla.Loc(9, 9))
	if sp.Exists() {
		t.Fatal("no node lives at (9,9)")
	}
	if err := sp.Out(agilla.T(agilla.Int(1))); err == nil {
		t.Error("Out into the void must fail")
	}
	if _, ok := sp.Rdp(agilla.Tmpl(agilla.Int(1))); ok {
		t.Error("Rdp on a missing node cannot match")
	}
	if sp.Count(agilla.Tmpl(agilla.TypeV(1))) != 0 || sp.All() != nil {
		t.Error("missing node must read as empty")
	}
	// Watch on a missing node closes immediately instead of hanging.
	select {
	case _, open := <-sp.Watch(agilla.Tmpl(agilla.TypeV(1))):
		if open {
			t.Error("missing-node watch delivered a tuple")
		}
	case <-time.After(5 * time.Second):
		t.Error("missing-node watch never closed")
	}
}

func TestSpaceWatchDeliversMatches(t *testing.T) {
	nw := reliableGrid(t, 2, 1)
	sp := nw.Space(agilla.Loc(2, 1))

	hits := sp.Watch(visited)                          // <"vst", any location>
	misses := sp.Watch(agilla.Tmpl(agilla.Str("zzz"))) // matches nothing

	// The agent's out at (2,1) is a real insertion and must be seen;
	// host-side insertions count too.
	ag, err := nw.Inject(marker, agilla.Loc(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if done, err := ag.WaitDone(time.Minute); err != nil || !done {
		t.Fatalf("marker agent: done=%v err=%v", done, err)
	}
	if err := sp.Out(agilla.T(agilla.Str("vst"), agilla.LocV(agilla.Loc(0, 0)))); err != nil {
		t.Fatal(err)
	}
	nw.Close()

	var got []agilla.Tuple
	for tup := range hits {
		got = append(got, tup)
	}
	if len(got) != 2 {
		t.Fatalf("watch delivered %d tuples, want 2: %v", len(got), got)
	}
	if got[0].Fields[1].Loc() != agilla.Loc(2, 1) {
		t.Errorf("first match = %v, want the agent's stamp at (2,1)", got[0])
	}
	if got[1].Fields[1].Loc() != agilla.Loc(0, 0) {
		t.Errorf("second match = %v, want the host's stamp", got[1])
	}
	if tup, open := <-misses; open {
		t.Errorf("non-matching watch delivered %v", tup)
	}
}

func TestSpaceWatchSeesRemoteInsertions(t *testing.T) {
	// A Watch observes insertions whatever their origin — including a
	// rout arriving over the air, the FIREDETECTOR notification path.
	nw := reliableGrid(t, 2, 1)
	alerts := nw.Space(agilla.Loc(2, 1)).Watch(agilla.Tmpl(agilla.Str("fir"), agilla.TypeV(3)))
	if err := nw.Remote().Rout(agilla.Loc(2, 1),
		agilla.T(agilla.Str("fir"), agilla.LocV(agilla.Loc(4, 4)))); err != nil {
		t.Fatal(err)
	}
	nw.Close()
	tup, open := <-alerts
	if !open {
		t.Fatal("watch closed without delivering the remote insertion")
	}
	if tup.Fields[1].Loc() != agilla.Loc(4, 4) {
		t.Fatalf("alert = %v", tup)
	}
}
