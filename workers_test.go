package agilla_test

import (
	"testing"
	"time"

	"github.com/agilla-go/agilla"
	"github.com/agilla-go/agilla/program"
)

// workerFingerprint runs a small deployment at the given parallelism and
// returns a digest of everything externally observable: every tuple on
// every node, every agent record, and the virtual clock.
func workerFingerprint(t *testing.T, workers int) string {
	t.Helper()
	nw, err := agilla.New(
		agilla.WithTopology(agilla.Grid(4, 4)),
		agilla.WithSeed(23),
		agilla.WithWorkers(workers),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if err := nw.WarmUp(); err != nil {
		t.Fatal(err)
	}
	p, err := program.Parse("pushn hi\nloc\npushc 2\nout\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Launch(p, agilla.Loc(4, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Launch(p, agilla.Loc(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	out := nw.Now().String() + "|"
	for _, loc := range nw.Locations() {
		for _, tup := range nw.Space(loc).All() {
			out += loc.String() + tup.String() + ";"
		}
	}
	for _, ag := range nw.Agents() {
		info := ag.Info()
		out += info.Loc.String() + info.State.String() + time.Duration(info.BornAt).String() + ";"
	}
	return out
}

// TestWithWorkersMatchesSequential is the public-API face of the kernel's
// determinism guarantee: the same seed must yield byte-identical
// observable state whatever parallelism the network runs at.
func TestWithWorkersMatchesSequential(t *testing.T) {
	want := workerFingerprint(t, 1)
	for _, w := range []int{2, 4} {
		if got := workerFingerprint(t, w); got != want {
			t.Errorf("workers=%d diverged from sequential:\n got %s\nwant %s", w, got, want)
		}
	}
}

// TestScenarioWorkersMetricsIdentical pins the scenario runner: a
// time-bounded scenario must report identical metrics at any parallelism.
func TestScenarioWorkersMetricsIdentical(t *testing.T) {
	mk := func(workers int) *agilla.Scenario {
		return &agilla.Scenario{
			Name:     "workers-equivalence",
			Topology: agilla.Grid(4, 4),
			Agents: []agilla.AgentSpec{
				{Name: "greet", Source: "pushn hi\nloc\npushc 2\nout\nhalt", At: agilla.Loc(4, 4)},
			},
			Duration: 15 * time.Second,
			Workers:  workers,
		}
	}
	want, err := mk(1).Run(31)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mk(3).Run(31)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("parallel scenario metrics diverged:\n got %s\nwant %s", got, want)
	}
}
